//===- tests/mergetree_stream_test.cpp - Streaming-merge identity -*- C++ -*-===//
//
// The streaming shard-ingestion contract: for every shard count and
// job count, loadAndMergeProfiles must produce a result byte-identical
// to an in-memory mergeProfiles of the same shards — the reduction
// tree's shape is part of the output (Profile::merge is not
// associative), so serial loading, streaming accumulation, and
// parallel pair-merging all have to reproduce one canonical tree.
// Also covers: cross-version identity (v1/v2/v3 shards merge to the
// same bytes), v1->v3 and v2->v3 round-trips, the strict-mode
// all-or-nothing contract at every job count, and the bounded-memory
// guarantee (peak resident decoded profiles stays O(jobs + log n)).
//
//===----------------------------------------------------------------------===//

#include "profile/MergeTree.h"
#include "profile/Profile.h"
#include "profile/ProfileIO.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace structslim;
using namespace structslim::profile;

namespace {

/// A shard with enough cross-shard overlap that merging is non-trivial:
/// shared objects, shared stream IPs, per-shard representative
/// addresses (exercising the GCD-sharpening that makes merge order
/// observable), and a few shard-private objects.
Profile makeShard(unsigned Shard) {
  Rng R(0xabc0 + Shard);
  Profile P;
  P.ThreadId = Shard;
  P.SamplePeriod = 10000;
  P.TotalSamples = 10 + Shard;
  P.TotalLatency = 1000 * (Shard + 1);
  P.Instructions = 50000 + 17 * Shard;
  P.MemoryAccesses = 9000 + Shard;
  P.Cycles = 100000 + 31 * Shard;
  for (unsigned Obj = 0; Obj != 6; ++Obj) {
    bool Shared = Obj < 4;
    std::string Key = Shared ? "obj" + std::to_string(Obj)
                             : "heap" + std::to_string(Shard) + "_" +
                                   std::to_string(Obj);
    uint32_t Idx = P.getOrCreateObject(Key);
    uint64_t Start = 0x10000ull * (Obj + 1);
    ObjectAgg &Agg = P.Objects[Idx];
    Agg.Name = Key;
    Agg.Start = Start;
    Agg.Size = 1 << 14;
    Agg.SampleCount = 4 + R.nextBelow(10);
    Agg.LatencySum = 100 + R.nextBelow(1000);
    for (unsigned S = 0; S != 5; ++S) {
      StreamRecord &Rec =
          P.getOrCreateStream(0x400000 + 0x100 * Obj + 8 * S, Idx);
      Rec.LoopId = static_cast<int32_t>(S % 3);
      Rec.Line = 10 + S;
      Rec.AccessSize = 8;
      Rec.SampleCount = 1 + R.nextBelow(20);
      Rec.LatencySum = 10 + R.nextBelow(500);
      Rec.UniqueAddrCount = 1 + R.nextBelow(8);
      Rec.StrideGcd = 8ull << (S % 3);
      Rec.ObjectStart = Start;
      Rec.RepAddr = Start + 24ull * (Shard + 1) + S;
      Rec.LastAddr = Rec.RepAddr + Rec.StrideGcd;
      Rec.LevelSamples[S % 4] = 1 + R.nextBelow(5);
      Rec.TlbMissSamples = R.nextBelow(3);
    }
  }
  P.Contexts.attribute(
      P.Contexts.intern({0x400000, 0x400100 + Shard % 3, 0x400200}),
      10 * (Shard + 1));
  P.Contexts.attribute(P.Contexts.intern({0x400000, 0x400400}), 5 + Shard);
  return P;
}

class MergeTreeStream : public ::testing::Test {
protected:
  std::string scratchDir() {
    std::string Dir =
        std::string("mergetree_tmp/") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
    return Dir;
  }

  /// Writes \p Count shards in format \p Version, returning the paths.
  std::vector<std::string> writeShards(const std::string &Dir, unsigned Count,
                                       unsigned Version) {
    std::vector<std::string> Files;
    for (unsigned I = 0; I != Count; ++I) {
      std::string Path = Dir + "/thread" + std::to_string(I) + ".structslim";
      std::ofstream(Path, std::ios::binary)
          << profileToString(makeShard(I), Version);
      Files.push_back(Path);
    }
    return Files;
  }
};

} // namespace

// The tentpole identity: streaming load+merge at every job count ==
// in-memory mergeProfiles at every thread count, for shard counts that
// cover every binary-counter shape (all n through 17, plus a
// power-of-two+1 neighborhood and a larger even spread).
TEST_F(MergeTreeStream, StreamingMatchesTreeForEveryShardAndJobCount) {
  std::string Dir = scratchDir();
  const unsigned Counts[] = {1, 2,  3,  4,  5,  6,  7,  8,  9, 10,
                             11, 12, 13, 14, 15, 16, 17, 33, 64};
  std::vector<std::string> AllFiles = writeShards(Dir, 64, 3);
  for (unsigned N : Counts) {
    std::vector<std::string> Files(AllFiles.begin(), AllFiles.begin() + N);
    std::vector<Profile> Shards;
    for (unsigned I = 0; I != N; ++I)
      Shards.push_back(makeShard(I));
    std::string Expected =
        profileToString(mergeProfiles(std::move(Shards), 1));
    for (unsigned Jobs : {1u, 2u, 4u}) {
      MergeOptions Opts;
      Opts.WorkerThreads = Jobs;
      MergeLoadResult Load = loadAndMergeProfiles(Files, Opts);
      EXPECT_FALSE(Load.StrictFailure);
      ASSERT_EQ(Load.Loaded.size(), N) << "n=" << N << " jobs=" << Jobs;
      EXPECT_EQ(profileToString(Load.Merged), Expected)
          << "n=" << N << " jobs=" << Jobs;
    }
    // The in-memory tree is also job-count invariant.
    std::vector<Profile> Shards4;
    for (unsigned I = 0; I != N; ++I)
      Shards4.push_back(makeShard(I));
    EXPECT_EQ(profileToString(mergeProfiles(std::move(Shards4), 4)),
              Expected)
        << "n=" << N;
  }
}

TEST_F(MergeTreeStream, ShardOrderIsPartOfTheContract) {
  // Merging is order-sensitive by design (the canonical tree is over
  // the input order); the same files in the same order must give the
  // same bytes on repeated runs.
  std::string Dir = scratchDir();
  std::vector<std::string> Files = writeShards(Dir, 9, 3);
  MergeOptions Opts;
  Opts.WorkerThreads = 4;
  std::string First = profileToString(loadAndMergeProfiles(Files, Opts).Merged);
  for (int Run = 0; Run != 3; ++Run)
    EXPECT_EQ(profileToString(loadAndMergeProfiles(Files, Opts).Merged),
              First);
}

// Cross-version identity: the same logical shards serialized as v1, v2
// and v3 merge to byte-identical results — the format migration cannot
// shift any analyzer output.
TEST_F(MergeTreeStream, AllFormatVersionsMergeIdentically) {
  std::string Dir = scratchDir();
  const unsigned N = 7;
  std::string Results[3];
  for (unsigned Version = 1; Version <= 3; ++Version) {
    std::string SubDir = Dir + "/v" + std::to_string(Version);
    std::filesystem::create_directories(SubDir);
    std::vector<std::string> Files = writeShards(SubDir, N, Version);
    MergeOptions Opts;
    Opts.WorkerThreads = 2;
    MergeLoadResult Load = loadAndMergeProfiles(Files, Opts);
    ASSERT_EQ(Load.Loaded.size(), N) << "version " << Version;
    Results[Version - 1] = profileToString(Load.Merged);
  }
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Results[1], Results[2]);
}

// Round-trips across the version ladder: a profile written in an old
// format, read back, and re-written in v3 must equal the direct v3
// serialization (and v3 must round-trip exactly).
TEST_F(MergeTreeStream, CrossVersionRoundTripsAreExact) {
  for (unsigned Shard = 0; Shard != 4; ++Shard) {
    Profile P = makeShard(Shard);
    std::string V3 = profileToString(P, 3);
    for (unsigned Version = 1; Version <= 3; ++Version) {
      std::string Error;
      auto Back = profileFromString(profileToString(P, Version), &Error);
      ASSERT_TRUE(Back.has_value())
          << "version " << Version << ": " << Error;
      EXPECT_EQ(profileToString(*Back, 3), V3) << "version " << Version;
    }
  }
}

// Strict mode is all-or-nothing at every job count: a corrupt shard in
// the middle of the list yields StrictFailure with exactly that shard
// reported, no Loaded paths, and an empty Merged profile — never a
// partially merged result (the bug this guards against: an early
// return that left already-loaded paths in the result).
TEST_F(MergeTreeStream, StrictAbortExposesNoPartialState) {
  std::string Dir = scratchDir();
  std::vector<std::string> Files = writeShards(Dir, 12, 3);
  // Corrupt shard 7 by truncating it mid-payload.
  {
    std::ifstream In(Files[7], std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    In.close();
    std::ofstream(Files[7], std::ios::binary)
        << Bytes.substr(0, Bytes.size() / 2);
  }
  for (unsigned Jobs : {1u, 4u}) {
    MergeOptions Opts;
    Opts.Strict = true;
    Opts.WorkerThreads = Jobs;
    MergeLoadResult Load = loadAndMergeProfiles(Files, Opts);
    EXPECT_TRUE(Load.StrictFailure) << "jobs=" << Jobs;
    ASSERT_EQ(Load.Skipped.size(), 1u) << "jobs=" << Jobs;
    EXPECT_EQ(Load.Skipped[0].Path, Files[7]);
    EXPECT_FALSE(Load.Skipped[0].Message.empty());
    EXPECT_TRUE(Load.Loaded.empty()) << "jobs=" << Jobs;
    EXPECT_EQ(Load.Merged.TotalSamples, 0u);
    EXPECT_TRUE(Load.Merged.Objects.empty());
  }
}

// Non-strict skipping still matches the in-memory merge of survivors
// at every job count.
TEST_F(MergeTreeStream, SkippedShardsKeepIdentityAtEveryJobCount) {
  std::string Dir = scratchDir();
  std::vector<std::string> Files = writeShards(Dir, 10, 3);
  std::ofstream(Files[4], std::ios::binary) << "garbage";
  std::vector<Profile> Survivors;
  for (unsigned I = 0; I != 10; ++I)
    if (I != 4)
      Survivors.push_back(makeShard(I));
  std::string Expected =
      profileToString(mergeProfiles(std::move(Survivors), 1));
  for (unsigned Jobs : {1u, 2u, 4u}) {
    MergeOptions Opts;
    Opts.WorkerThreads = Jobs;
    MergeLoadResult Load = loadAndMergeProfiles(Files, Opts);
    ASSERT_EQ(Load.Skipped.size(), 1u);
    EXPECT_EQ(Load.Skipped[0].Path, Files[4]);
    ASSERT_EQ(Load.Loaded.size(), 9u);
    EXPECT_EQ(profileToString(Load.Merged), Expected) << "jobs=" << Jobs;
  }
}

// The bounded-memory guarantee: the streaming loader never holds more
// than O(jobs + log n) decoded profiles, no matter how many shards are
// merged. (The pre-streaming loader held all n.)
TEST_F(MergeTreeStream, PeakResidentProfilesIsBounded) {
  std::string Dir = scratchDir();
  const unsigned N = 64;
  std::vector<std::string> Files = writeShards(Dir, N, 3);
  for (unsigned Jobs : {1u, 2u, 4u}) {
    MergeOptions Opts;
    Opts.WorkerThreads = Jobs;
    MergeLoadResult Load = loadAndMergeProfiles(Files, Opts);
    ASSERT_EQ(Load.Loaded.size(), N);
    size_t LogN = static_cast<size_t>(std::ceil(std::log2(N))) + 1;
    EXPECT_LE(Load.PeakResidentProfiles, 2 * Jobs + LogN)
        << "jobs=" << Jobs;
    EXPECT_GE(Load.PeakResidentProfiles, 1u);
  }
}

// Timing observability: the load/reduce split is populated.
TEST_F(MergeTreeStream, TimingFieldsArePopulated) {
  std::string Dir = scratchDir();
  std::vector<std::string> Files = writeShards(Dir, 8, 3);
  MergeOptions Opts;
  Opts.WorkerThreads = 2;
  MergeLoadResult Load = loadAndMergeProfiles(Files, Opts);
  EXPECT_GT(Load.LoadSeconds, 0.0);
  EXPECT_GT(Load.ReduceSeconds, 0.0);
}

// Empty input stays well-defined.
TEST_F(MergeTreeStream, EmptyInputYieldsEmptyProfile) {
  MergeLoadResult Load = loadAndMergeProfiles({});
  EXPECT_TRUE(Load.Loaded.empty());
  EXPECT_TRUE(Load.Skipped.empty());
  EXPECT_FALSE(Load.StrictFailure);
  EXPECT_EQ(Load.Merged.TotalSamples, 0u);
}

// The batched (interned) merge and the string-keyed merge are
// bit-identical — directly, not just via the loader.
TEST_F(MergeTreeStream, BatchedMergeMatchesStringMerge) {
  for (unsigned N : {2u, 3u, 5u, 8u}) {
    Profile StringMerged = makeShard(0);
    for (unsigned I = 1; I != N; ++I)
      StringMerged.merge(makeShard(I));

    ObjectKeyInterner Interner;
    MergeScratch Scratch;
    Profile Batched = makeShard(0);
    Batched.internObjectKeys(Interner);
    for (unsigned I = 1; I != N; ++I) {
      Profile Next = makeShard(I);
      Next.internObjectKeys(Interner);
      Batched.merge(Next, Scratch);
    }
    EXPECT_EQ(profileToString(Batched), profileToString(StringMerged))
        << "n=" << N;
  }
}

//===----------------------------------------------------------------------===//
// EpochAccumulator: incremental epochs over the same canonical tree.
//===----------------------------------------------------------------------===//

// Any epoch schedule over a file sequence — one shard at a time,
// batches, lopsided splits — must leave the accumulator bit-identical
// to a one-shot loadAndMergeProfiles over the concatenated sequence,
// at every job count. compact() after each epoch must equal the
// one-shot merge of the prefix consumed so far.
TEST_F(MergeTreeStream, EpochSchedulesMatchOneShotMerge) {
  std::string Dir = scratchDir();
  const unsigned N = 13;
  std::vector<std::string> Files = writeShards(Dir, N, 3);
  const std::vector<std::vector<unsigned>> Schedules = {
      {13},                      // One epoch == plain one-shot.
      {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, // Fully incremental.
      {3, 3, 3, 3, 1},           // Uniform batches with a tail.
      {1, 12},                   // Lopsided early.
      {12, 1},                   // Lopsided late.
      {5, 0, 8},                 // An empty epoch in the middle.
  };
  for (unsigned Jobs : {1u, 2u, 4u}) {
    MergeOptions Opts;
    Opts.WorkerThreads = Jobs;
    for (const std::vector<unsigned> &Schedule : Schedules) {
      EpochAccumulator Acc(Opts);
      size_t Consumed = 0;
      for (unsigned Batch : Schedule) {
        std::vector<std::string> Epoch(Files.begin() + Consumed,
                                       Files.begin() + Consumed + Batch);
        MergeLoadResult Result = Acc.addShards(Epoch);
        EXPECT_FALSE(Result.StrictFailure);
        ASSERT_EQ(Result.Loaded.size(), Batch);
        Consumed += Batch;
        std::vector<std::string> Prefix(Files.begin(),
                                        Files.begin() + Consumed);
        EXPECT_EQ(profileToString(Acc.compact()),
                  profileToString(loadAndMergeProfiles(Prefix, Opts).Merged))
            << "jobs=" << Jobs << " consumed=" << Consumed;
        EXPECT_EQ(Acc.shardCount(), Consumed);
      }
      EXPECT_EQ(profileToString(Acc.take()),
                profileToString(loadAndMergeProfiles(Files, Opts).Merged))
          << "jobs=" << Jobs;
    }
  }
}

// compact() leaves the accumulator intact: repeated compaction returns
// the same bytes, and appending afterwards behaves as if compact() was
// never called.
TEST_F(MergeTreeStream, CompactIsNonDestructive) {
  std::string Dir = scratchDir();
  std::vector<std::string> Files = writeShards(Dir, 9, 3);
  MergeOptions Opts;
  Opts.WorkerThreads = 2;
  EpochAccumulator Acc(Opts);
  Acc.addShards({Files.begin(), Files.begin() + 5});
  std::string First = profileToString(Acc.compact());
  EXPECT_EQ(profileToString(Acc.compact()), First);
  EXPECT_EQ(Acc.shardCount(), 5u);
  Acc.addShards({Files.begin() + 5, Files.end()});
  EXPECT_EQ(profileToString(Acc.take()),
            profileToString(loadAndMergeProfiles(Files, Opts).Merged));
}

// take() drains the accumulator: it resets to empty and can be reused
// for an unrelated shard sequence.
TEST_F(MergeTreeStream, TakeResetsTheAccumulatorForReuse) {
  std::string Dir = scratchDir();
  std::vector<std::string> Files = writeShards(Dir, 8, 3);
  MergeOptions Opts;
  Opts.WorkerThreads = 1;
  EpochAccumulator Acc(Opts);
  Acc.addShards({Files.begin(), Files.begin() + 3});
  (void)Acc.take();
  EXPECT_EQ(Acc.shardCount(), 0u);
  EXPECT_EQ(Acc.residentProfiles(), 0u);
  std::vector<std::string> Second(Files.begin() + 3, Files.end());
  Acc.addShards(Second);
  EXPECT_EQ(profileToString(Acc.take()),
            profileToString(loadAndMergeProfiles(Second, Opts).Merged));
}

// The resident-subtree bound holds across epochs: never more than
// log2(shards) + 1 merged subtrees on the stack.
TEST_F(MergeTreeStream, EpochResidentProfilesStayLogarithmic) {
  std::string Dir = scratchDir();
  const unsigned N = 64;
  std::vector<std::string> Files = writeShards(Dir, N, 3);
  EpochAccumulator Acc;
  for (unsigned I = 0; I != N; ++I) {
    Acc.addShards({Files[I]});
    size_t Bound =
        static_cast<size_t>(std::floor(std::log2(I + 1))) + 1;
    EXPECT_LE(Acc.residentProfiles(), Bound) << "after shard " << I;
  }
  EXPECT_EQ(Acc.shardCount(), N);
}

// Strict mode across epochs: a failing epoch restores the accumulator
// to its pre-call state — the earlier epochs' merge is unchanged, and
// retrying with the repaired shard list continues as if the failed
// call never happened. Exercised at both the serial and streaming job
// counts.
TEST_F(MergeTreeStream, StrictEpochFailureRestoresPriorState) {
  for (unsigned Jobs : {1u, 4u}) {
    std::string Dir = scratchDir();
    std::vector<std::string> Files = writeShards(Dir, 12, 3);
    std::string Corrupt = Dir + "/corrupt.structslim";
    {
      std::ifstream In(Files[8], std::ios::binary);
      std::string Bytes((std::istreambuf_iterator<char>(In)),
                        std::istreambuf_iterator<char>());
      std::ofstream(Corrupt, std::ios::binary)
          << Bytes.substr(0, Bytes.size() / 2);
    }
    MergeOptions Opts;
    Opts.Strict = true;
    Opts.WorkerThreads = Jobs;
    EpochAccumulator Acc(Opts);
    MergeLoadResult First =
        Acc.addShards({Files.begin(), Files.begin() + 6});
    ASSERT_FALSE(First.StrictFailure);
    std::string BeforeFailure = profileToString(Acc.compact());
    size_t ShardsBefore = Acc.shardCount();

    // Epoch 2 aborts on the corrupt shard in the middle.
    std::vector<std::string> BadEpoch = {Files[6], Corrupt, Files[7]};
    MergeLoadResult Failed = Acc.addShards(BadEpoch);
    EXPECT_TRUE(Failed.StrictFailure) << "jobs=" << Jobs;
    ASSERT_EQ(Failed.Skipped.size(), 1u);
    EXPECT_EQ(Failed.Skipped[0].Path, Corrupt);
    EXPECT_FALSE(Failed.Skipped[0].Message.empty());
    EXPECT_TRUE(Failed.Loaded.empty());
    EXPECT_EQ(Acc.shardCount(), ShardsBefore);
    EXPECT_EQ(profileToString(Acc.compact()), BeforeFailure)
        << "jobs=" << Jobs;

    // A repaired epoch continues to the one-shot answer.
    MergeLoadResult Retry =
        Acc.addShards({Files.begin() + 6, Files.end()});
    ASSERT_FALSE(Retry.StrictFailure);
    EXPECT_EQ(profileToString(Acc.take()),
              profileToString(loadAndMergeProfiles(Files, Opts).Merged))
        << "jobs=" << Jobs;
  }
}
