//===- tests/verify_golden_test.cpp - Golden closed-loop e2e ---*- C++ -*-===//
//
// Runs the real structslim-verify binary over all seven paper
// workloads at a pinned scale and asserts:
//  - the JSON deltas match the checked-in golden byte for byte
//    (tests/data/golden_verify.json; regenerate with
//    tests/regen_advice_goldens.sh after intentional changes),
//  - no workload regresses modeled latency and every one keeps its
//    results (the never-regress contract, parsed from the document),
//  - the document is byte-identical for --jobs=1 and --jobs=4,
//  - the CLI rejects malformed values/options with exit 2 and usage.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

std::string dataPath(const std::string &Name) {
  return std::string(STRUCTSLIM_TEST_DATA) + "/" + Name;
}

struct CommandResult {
  int ExitCode = -1;
  std::string Output; ///< stdout and stderr, interleaved.
};

CommandResult runVerify(const std::vector<std::string> &Args) {
  std::string Cmd = std::string(STRUCTSLIM_VERIFY_BIN);
  for (const std::string &A : Args)
    Cmd += " " + A;
  Cmd += " 2>&1";
  CommandResult Result;
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return Result;
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), Pipe)) != 0)
    Result.Output.append(Buffer, N);
  int Status = pclose(Pipe);
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Result;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

bool regenRequested() {
  const char *Env = std::getenv("STRUCTSLIM_REGEN_GOLDENS");
  return Env && *Env && std::string(Env) != "0";
}

/// The pinned invocation behind the golden document.
const std::vector<std::string> GoldenArgs = {"--scale=0.1", "--jobs=1",
                                             "--json"};

} // namespace

TEST(VerifyGolden, SevenWorkloadJsonDeltasMatchGolden) {
  CommandResult R = runVerify(GoldenArgs);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  std::string Path = dataPath("golden_verify.json");
  if (regenRequested()) {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << R.Output;
    GTEST_SKIP() << "regenerated " << Path;
  }
  std::string Golden = readFileBytes(Path);
  ASSERT_FALSE(Golden.empty())
      << "missing golden " << Path
      << " (run tests/regen_advice_goldens.sh to create it)";
  EXPECT_EQ(R.Output, Golden)
      << "closed-loop deltas drifted from " << Path
      << "; regenerate via tests/regen_advice_goldens.sh if intentional";
}

TEST(VerifyGolden, NoWorkloadRegressesAndAllResultsMatch) {
  CommandResult R = runVerify(GoldenArgs);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  // Summary of the never-regress contract, straight from the document.
  EXPECT_NE(R.Output.find("\"workloads\": 7"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"regressed\": 0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"results_mismatch\": 0"), std::string::npos);
  EXPECT_NE(R.Output.find("\"all_ok\": true"), std::string::npos);
  // Both application paths exercised: the serial workloads split at
  // the IR level, the parallel ones through the source rebuild.
  EXPECT_NE(R.Output.find("\"ir_split\": 4"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"fieldmap_rebuild\": 3"), std::string::npos);
  // No per-workload regression flags either.
  EXPECT_EQ(R.Output.find("\"regressed\": true"), std::string::npos);
  EXPECT_EQ(R.Output.find("\"results_match\": false"), std::string::npos);
}

TEST(VerifyGolden, JobCountNeverChangesTheDocument) {
  CommandResult One = runVerify({"--scale=0.1", "--jobs=1", "--json"});
  CommandResult Four = runVerify({"--scale=0.1", "--jobs=4", "--json"});
  ASSERT_EQ(One.ExitCode, 0) << One.Output;
  ASSERT_EQ(Four.ExitCode, 0) << Four.Output;
  EXPECT_EQ(One.Output, Four.Output);
}

TEST(VerifyGolden, SmokeModeRunsTwoWorkloadsGreen) {
  CommandResult R = runVerify({"--smoke"});
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("179.ART"), std::string::npos);
  EXPECT_NE(R.Output.find("CLOMP 1.2"), std::string::npos);
  EXPECT_NE(R.Output.find("ir-split"), std::string::npos);
  EXPECT_NE(R.Output.find("fieldmap-rebuild"), std::string::npos);
  EXPECT_NE(R.Output.find("0 regressed"), std::string::npos) << R.Output;
}

TEST(VerifyGolden, ListPrintsTheSevenPaperNames) {
  CommandResult R = runVerify({"--list"});
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  for (const char *Name : {"179.ART", "462.libquantum", "TSP", "Mser",
                           "CLOMP 1.2", "Health", "NN"})
    EXPECT_NE(R.Output.find(Name), std::string::npos) << Name;
}

TEST(VerifyGolden, SelectsSingleWorkloadByName) {
  CommandResult R = runVerify({"--scale=0.1", "TSP"});
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("TSP"), std::string::npos);
  EXPECT_NE(R.Output.find("1 workload(s)"), std::string::npos) << R.Output;
}

// --- Defensive CLI parsing ----------------------------------------------

TEST(VerifyCli, MalformedValuesExitTwoWithUsage) {
  struct Case {
    const char *Arg;
    const char *Flag;
  } Cases[] = {
      {"--scale=abc", "--scale"}, {"--scale=", "--scale"},
      {"--scale=0", "--scale"},   {"--scale=1x", "--scale"},
      {"--period=0", "--period"}, {"--period=ten", "--period"},
      {"--jobs=-1", "--jobs"},    {"--jobs=1x", "--jobs"},
  };
  for (const Case &C : Cases) {
    CommandResult R = runVerify({C.Arg});
    EXPECT_EQ(R.ExitCode, 2) << C.Arg << "\n" << R.Output;
    EXPECT_NE(R.Output.find("error: invalid value"), std::string::npos)
        << C.Arg << "\n" << R.Output;
    EXPECT_NE(R.Output.find(C.Flag), std::string::npos) << R.Output;
    EXPECT_NE(R.Output.find("usage:"), std::string::npos) << R.Output;
  }
}

TEST(VerifyCli, UnknownOptionExitsTwoWithUsage) {
  CommandResult R = runVerify({"--frobnicate"});
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("error: unknown option '--frobnicate'"),
            std::string::npos);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

TEST(VerifyCli, UnknownWorkloadExitsTwoNamingIt) {
  CommandResult R = runVerify({"NoSuchBench"});
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown workload 'NoSuchBench'"),
            std::string::npos);
}

TEST(VerifyCli, SmokeRejectsExplicitWorkloadNames) {
  CommandResult R = runVerify({"--smoke", "TSP"});
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("--smoke takes no workload names"),
            std::string::npos);
}
