//===- tests/tlb_test.cpp - Data TLB model tests ---------------*- C++ -*-===//

#include "analysis/CodeMap.h"
#include "cache/Hierarchy.h"
#include "cache/Tlb.h"
#include "ir/ProgramBuilder.h"
#include "mem/DataObjectTable.h"
#include "profile/ProfileIO.h"
#include "runtime/ProfileBuilder.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::cache;

TEST(Tlb, ColdMissThenHit) {
  Tlb T((TlbConfig()));
  EXPECT_FALSE(T.access(0x1000));
  EXPECT_TRUE(T.access(0x1008)); // Same 4 KiB page.
  EXPECT_FALSE(T.access(0x2000)); // Next page.
  EXPECT_EQ(T.getMisses(), 2u);
  EXPECT_EQ(T.getHits(), 1u);
}

TEST(Tlb, CoversConfiguredReach) {
  TlbConfig Cfg;
  Cfg.Entries = 64;
  Cfg.Assoc = 4;
  Tlb T(Cfg);
  // Touch 64 consecutive pages, then re-touch: all hits (64-entry
  // fully utilized, 16 sets x 4 ways, consecutive pages spread evenly).
  for (uint64_t P = 0; P != 64; ++P)
    T.access(P << 12);
  T.resetCounters();
  for (uint64_t P = 0; P != 64; ++P)
    EXPECT_TRUE(T.access(P << 12)) << "page " << P;
}

TEST(Tlb, EvictsLruBeyondReach) {
  TlbConfig Cfg;
  Cfg.Entries = 8;
  Cfg.Assoc = 2; // 4 sets.
  Tlb T(Cfg);
  // Pages 0, 4, 8 map to set 0; capacity 2.
  T.access(0ull << 12);
  T.access(4ull << 12);
  T.access(8ull << 12); // Evicts page 0.
  EXPECT_FALSE(T.access(0ull << 12));
}

TEST(Tlb, BadGeometryAborts) {
  TlbConfig Cfg;
  Cfg.Entries = 10;
  Cfg.Assoc = 4;
  EXPECT_DEATH(Tlb{Cfg}, "multiple of associativity");
}

TEST(TlbHierarchy, MissAddsWalkLatency) {
  HierarchyConfig Cfg;
  Cfg.EnableTlb = true;
  MemoryHierarchy H(Cfg);
  AccessResult First = H.access(0, 8, false, 1);
  EXPECT_TRUE(First.TlbMiss);
  EXPECT_EQ(First.Latency, Cfg.DramLatency + Cfg.Tlb.WalkLatency);
  AccessResult Second = H.access(8, 8, false, 1);
  EXPECT_FALSE(Second.TlbMiss);
  EXPECT_EQ(Second.Latency, Cfg.L1.HitLatency);
  EXPECT_EQ(H.tlb().getMisses(), 1u);
}

TEST(TlbHierarchy, DisabledByDefault) {
  MemoryHierarchy H((HierarchyConfig()));
  AccessResult R = H.access(0, 8, false, 1);
  EXPECT_FALSE(R.TlbMiss);
  EXPECT_EQ(R.Latency, H.getConfig().DramLatency);
  EXPECT_EQ(H.tlb().getMisses() + H.tlb().getHits(), 0u);
}

TEST(TlbHierarchy, LongStridesMissMore) {
  // The structure-splitting motivation at page granularity: a 4 KiB
  // stride touches a new page every access; an 8-byte stride touches a
  // new page every 512 accesses.
  HierarchyConfig Cfg;
  Cfg.EnableTlb = true;
  MemoryHierarchy Wide(Cfg), Dense(Cfg);
  for (uint64_t I = 0; I != 4096; ++I) {
    Wide.access(I * 4096, 8, false, 1);
    Dense.access(I * 8, 8, false, 2);
  }
  EXPECT_EQ(Wide.tlb().getMisses(), 4096u);
  EXPECT_LE(Dense.tlb().getMisses(), 10u);
}

TEST(TlbSampling, MissFlagReachesProfile) {
  // End-to-end: a TLB-missing sampled access marks the stream record.
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  B.forLoopI(0, 4, 1, [&](ir::Reg) { B.work(0); });
  B.ret();
  uint64_t LoopIp = F.Blocks[2]->Instrs.front().Ip; // Body block.
  analysis::CodeMap Map(P);
  mem::DataObjectTable Objects;
  Objects.addHeap("arr", 0x10000, 1 << 20, {});
  runtime::ProfileBuilder Builder(Map, Objects, 0, 10000);

  pmu::AddressSample S;
  S.Ip = LoopIp;
  S.EffAddr = 0x10040;
  S.Latency = 230;
  S.AccessSize = 8;
  S.TlbMiss = true;
  Builder.onSample(S);
  S.EffAddr = 0x10080;
  S.TlbMiss = false;
  Builder.onSample(S);

  profile::Profile Prof = Builder.take();
  ASSERT_EQ(Prof.Streams.size(), 1u);
  EXPECT_EQ(Prof.Streams[0].TlbMissSamples, 1u);
}

TEST(TlbSampling, SurvivesSerializationAndMerge) {
  profile::Profile A;
  uint32_t Obj = A.getOrCreateObject("x");
  profile::StreamRecord &S = A.getOrCreateStream(5, Obj);
  S.SampleCount = 3;
  S.TlbMissSamples = 2;
  auto Back = profile::profileFromString(profile::profileToString(A));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Streams[0].TlbMissSamples, 2u);
  profile::Profile C;
  C.merge(A);
  C.merge(*Back);
  EXPECT_EQ(C.Streams[0].TlbMissSamples, 4u);
}
