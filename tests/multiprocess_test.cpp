//===- tests/multiprocess_test.cpp - Cross-process merging -----*- C++ -*-===//
//
// Paper Sec. 4.4 covers programs with "multiple threads or/and
// processes": profiles from different processes merge by data-object
// identity (symbol name / allocation call path), and all analyses run
// on the aggregate. These tests run several independent instances of a
// parallel workload (each its own address space and sampling phase)
// and verify the merged analysis.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::workloads;

namespace {

DriverConfig testConfig() {
  DriverConfig Cfg;
  Cfg.Scale = 0.1;
  Cfg.Run.Sampling.Period = 2000;
  return Cfg;
}

} // namespace

TEST(MultiProcess, SamplesAggregateAcrossProcesses) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 3);
  ASSERT_EQ(R.Processes.size(), 3u);
  uint64_t Sum = 0;
  for (const auto &P : R.Processes)
    Sum += P.Samples;
  EXPECT_EQ(R.Merged.TotalSamples, Sum);
  EXPECT_GT(Sum, 0u);
}

TEST(MultiProcess, ObjectsAlignByAllocationSite) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 2);
  // Every process allocated its own zone array, but the allocation
  // site is the same instruction: one aggregate object.
  const profile::ObjectAgg *Zone = nullptr;
  for (const profile::ObjectAgg &O : R.Merged.Objects)
    if (O.Name == "_Zone") {
      EXPECT_EQ(Zone, nullptr) << "duplicate _Zone aggregates";
      Zone = &O;
    }
  ASSERT_NE(Zone, nullptr);
}

TEST(MultiProcess, IndependentSamplingPhases) {
  // Different processes must not sample the identical access index
  // sequence (their PMUs jitter independently); totals then differ
  // slightly even though execution is identical.
  auto W = makeLibquantum();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 2);
  ASSERT_EQ(R.Processes.size(), 2u);
  EXPECT_EQ(R.Processes[0].MemoryAccesses, R.Processes[1].MemoryAccesses);
  // Sample positions differ; identical totals would be a 1-in-large
  // coincidence, but latencies are what distinguish reliably.
  EXPECT_GT(R.Processes[0].Samples, 0u);
  EXPECT_GT(R.Processes[1].Samples, 0u);
}

TEST(MultiProcess, MergedAnalysisMatchesPaperAdvice) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 3);
  core::StructSlimAnalyzer Analyzer(*R.CodeMap);
  ir::StructLayout Layout = W->hotLayout();
  Analyzer.registerLayout(W->hotObjectName(), Layout);
  core::AnalysisResult Analysis = Analyzer.analyze(R.Merged);
  const core::ObjectAnalysis *Hot = Analysis.findObject("_Zone");
  ASSERT_NE(Hot, nullptr);
  EXPECT_EQ(Hot->StructSize, 32u);
  core::SplitPlan Plan = core::makeSplitPlan(*Hot, &Layout);
  ASSERT_TRUE(Plan.isSplit());
  // Fig. 11: {value, nextZone} is the hot cluster.
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{16, 24}));
}

TEST(MultiProcess, SingleProcessEqualsRunWorkload) {
  auto W = makeMser();
  transform::FieldMap Map(W->hotLayout());
  DriverConfig Cfg = testConfig();
  MultiProcessResult Multi = runProcesses(*W, Map, Cfg, 1);
  DriverConfig Same = Cfg;
  Same.Run.Sampling.Seed = Cfg.Run.Sampling.Seed + 7919;
  WorkloadRun Single = runWorkload(*W, Map, Same, true);
  EXPECT_EQ(Multi.Merged.TotalSamples, Single.Merged.TotalSamples);
  EXPECT_EQ(Multi.Merged.TotalLatency, Single.Merged.TotalLatency);
}
