//===- tests/multiprocess_test.cpp - Cross-process merging -----*- C++ -*-===//
//
// Paper Sec. 4.4 covers programs with "multiple threads or/and
// processes": profiles from different processes merge by data-object
// identity (symbol name / allocation call path), and all analyses run
// on the aggregate. These tests run several independent instances of a
// parallel workload (each its own address space and sampling phase)
// and verify the merged analysis.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "profile/MergeTree.h"
#include "profile/ProfileIO.h"
#include "support/FaultInjection.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace structslim;
using namespace structslim::workloads;

namespace {

DriverConfig testConfig() {
  DriverConfig Cfg;
  Cfg.Scale = 0.1;
  Cfg.Run.Sampling.Period = 2000;
  return Cfg;
}

} // namespace

TEST(MultiProcess, SamplesAggregateAcrossProcesses) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 3);
  ASSERT_EQ(R.Processes.size(), 3u);
  uint64_t Sum = 0;
  for (const auto &P : R.Processes)
    Sum += P.Samples;
  EXPECT_EQ(R.Merged.TotalSamples, Sum);
  EXPECT_GT(Sum, 0u);
}

TEST(MultiProcess, ObjectsAlignByAllocationSite) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 2);
  // Every process allocated its own zone array, but the allocation
  // site is the same instruction: one aggregate object.
  const profile::ObjectAgg *Zone = nullptr;
  for (const profile::ObjectAgg &O : R.Merged.Objects)
    if (O.Name == "_Zone") {
      EXPECT_EQ(Zone, nullptr) << "duplicate _Zone aggregates";
      Zone = &O;
    }
  ASSERT_NE(Zone, nullptr);
}

TEST(MultiProcess, IndependentSamplingPhases) {
  // Different processes must not sample the identical access index
  // sequence (their PMUs jitter independently); totals then differ
  // slightly even though execution is identical.
  auto W = makeLibquantum();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 2);
  ASSERT_EQ(R.Processes.size(), 2u);
  EXPECT_EQ(R.Processes[0].MemoryAccesses, R.Processes[1].MemoryAccesses);
  // Sample positions differ; identical totals would be a 1-in-large
  // coincidence, but latencies are what distinguish reliably.
  EXPECT_GT(R.Processes[0].Samples, 0u);
  EXPECT_GT(R.Processes[1].Samples, 0u);
}

TEST(MultiProcess, MergedAnalysisMatchesPaperAdvice) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  MultiProcessResult R = runProcesses(*W, Map, testConfig(), 3);
  core::StructSlimAnalyzer Analyzer(*R.CodeMap);
  ir::StructLayout Layout = W->hotLayout();
  Analyzer.registerLayout(W->hotObjectName(), Layout);
  core::AnalysisResult Analysis = Analyzer.analyze(R.Merged);
  const core::ObjectAnalysis *Hot = Analysis.findObject("_Zone");
  ASSERT_NE(Hot, nullptr);
  EXPECT_EQ(Hot->StructSize, 32u);
  core::SplitPlan Plan = core::makeSplitPlan(*Hot, &Layout);
  ASSERT_TRUE(Plan.isSplit());
  // Fig. 11: {value, nextZone} is the hot cluster.
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{16, 24}));
}

namespace {

/// Runs \p NumProcesses independent CLOMP instances (each its own
/// Machine and sampling phase, as runProcesses does) and returns every
/// per-thread profile as one flat shard set — the files a production
/// job's threads would each dump without synchronization. Thread ids
/// are renumbered globally so dump names cannot collide.
std::vector<profile::Profile> runShards(unsigned NumProcesses) {
  auto W = makeClomp();
  transform::FieldMap Map(W->hotLayout());
  DriverConfig Cfg = testConfig();
  std::vector<profile::Profile> Shards;
  for (unsigned Rank = 0; Rank != NumProcesses; ++Rank) {
    runtime::RunConfig RunCfg = Cfg.Run;
    RunCfg.Sampling.Seed = Cfg.Run.Sampling.Seed + 7919 * (Rank + 1);
    runtime::ThreadedRuntime Runtime(RunCfg);
    BuiltWorkload Built = W->build(Runtime.machine(), Map, Cfg.Scale);
    analysis::CodeMap CodeMap(*Built.Program);
    for (const auto &Phase : Built.Phases)
      Runtime.runPhase(*Built.Program, &CodeMap, Phase);
    runtime::RunResult R = Runtime.finish();
    for (profile::Profile &P : R.Profiles)
      Shards.push_back(std::move(P));
  }
  for (size_t I = 0; I != Shards.size(); ++I)
    Shards[I].ThreadId = static_cast<uint32_t>(I);
  return Shards;
}

std::string freshDir(const std::string &Name) {
  std::string Dir = "multiproc_tmp/" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

TEST(MultiProcess, DumpLoadMergeEqualsInMemoryMerge) {
  support::FaultInjector::instance().reset();
  std::vector<profile::Profile> Shards = runShards(2);
  ASSERT_GE(Shards.size(), 8u); // 2 processes x >= 4 worker threads.

  std::string Expected =
      profile::profileToString(profile::mergeProfiles(Shards, 1));
  std::vector<std::string> Files =
      runtime::dumpProfiles(Shards, freshDir("roundtrip"));
  ASSERT_EQ(Files.size(), Shards.size());

  profile::MergeOptions Opts;
  Opts.WorkerThreads = 1;
  profile::MergeLoadResult Load = profile::loadAndMergeProfiles(Files, Opts);
  EXPECT_TRUE(Load.Skipped.empty());
  EXPECT_EQ(profile::profileToString(Load.Merged), Expected);
}

TEST(MultiProcess, CorruptShardYieldsWarnedPartialMerge) {
  // The acceptance scenario: one shard of an 8-thread job is torn
  // mid-write; the merge must skip it with a structured report and the
  // merged latencies must equal the merge of the surviving shards.
  support::FaultInjector &Inj = support::FaultInjector::instance();
  Inj.reset();
  std::vector<profile::Profile> Shards = runShards(2);
  ASSERT_GE(Shards.size(), 8u);
  Shards.resize(8);

  const unsigned Torn = 4;
  std::vector<profile::Profile> Survivors;
  for (size_t I = 0; I != Shards.size(); ++I)
    if (I != Torn)
      Survivors.push_back(Shards[I]);
  std::string Expected =
      profile::profileToString(profile::mergeProfiles(Survivors, 1));

  Inj.arm(support::FaultSite::ProfileWrite,
          support::FaultAction::TruncateTail, Torn, 100);
  std::vector<std::string> Files =
      runtime::dumpProfiles(Shards, freshDir("corrupt"));
  Inj.reset();
  ASSERT_EQ(Files.size(), 8u);

  profile::MergeOptions Opts;
  Opts.WorkerThreads = 1;
  profile::MergeLoadResult Load = profile::loadAndMergeProfiles(Files, Opts);
  ASSERT_EQ(Load.Skipped.size(), 1u);
  EXPECT_EQ(Load.Skipped[0].Path, Files[Torn]);
  EXPECT_FALSE(Load.Skipped[0].Message.empty());
  EXPECT_EQ(Load.Loaded.size(), 7u);
  EXPECT_EQ(profile::profileToString(Load.Merged), Expected);

  // Strict mode turns the same input into a hard failure that names
  // the failing shard.
  Opts.Strict = true;
  profile::MergeLoadResult StrictLoad =
      profile::loadAndMergeProfiles(Files, Opts);
  EXPECT_TRUE(StrictLoad.StrictFailure);
  ASSERT_EQ(StrictLoad.Skipped.size(), 1u);
  EXPECT_EQ(StrictLoad.Skipped[0].Path, Files[Torn]);
}

TEST(MultiProcess, SingleProcessEqualsRunWorkload) {
  auto W = makeMser();
  transform::FieldMap Map(W->hotLayout());
  DriverConfig Cfg = testConfig();
  MultiProcessResult Multi = runProcesses(*W, Map, Cfg, 1);
  DriverConfig Same = Cfg;
  Same.Run.Sampling.Seed = Cfg.Run.Sampling.Seed + 7919;
  WorkloadRun Single = runWorkload(*W, Map, Same, true);
  EXPECT_EQ(Multi.Merged.TotalSamples, Single.Merged.TotalSamples);
  EXPECT_EQ(Multi.Merged.TotalLatency, Single.Merged.TotalLatency);
}
