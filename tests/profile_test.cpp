//===- tests/profile_test.cpp - Profile model / IO / merge -----*- C++ -*-===//

#include "profile/MergeTree.h"
#include "profile/Profile.h"
#include "profile/ProfileIO.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::profile;

namespace {

/// A profile with one object and one stream, parameterized enough to
/// exercise merge rules.
Profile makeSimple(uint32_t Thread, uint64_t Latency, uint64_t Gcd,
                   uint64_t Rep, uint64_t ObjectStart = 0x1000) {
  Profile P;
  P.ThreadId = Thread;
  P.SamplePeriod = 10000;
  P.TotalSamples = 5;
  P.TotalLatency = Latency;
  uint32_t Obj = P.getOrCreateObject("arr");
  P.Objects[Obj].Name = "arr";
  P.Objects[Obj].Start = ObjectStart;
  P.Objects[Obj].Size = 640;
  P.Objects[Obj].SampleCount = 5;
  P.Objects[Obj].LatencySum = Latency;
  StreamRecord &S = P.getOrCreateStream(0x400100, Obj);
  S.LoopId = 2;
  S.Line = 10;
  S.AccessSize = 8;
  S.SampleCount = 5;
  S.LatencySum = Latency;
  S.UniqueAddrCount = 4;
  S.StrideGcd = Gcd;
  S.RepAddr = Rep;
  S.LastAddr = Rep;
  S.ObjectStart = ObjectStart;
  S.LevelSamples = {3, 1, 1, 0};
  return P;
}

} // namespace

TEST(Profile, GetOrCreateObjectIsIdempotent) {
  Profile P;
  uint32_t A = P.getOrCreateObject("x");
  uint32_t B = P.getOrCreateObject("y");
  EXPECT_NE(A, B);
  EXPECT_EQ(P.getOrCreateObject("x"), A);
  EXPECT_EQ(P.Objects.size(), 2u);
}

TEST(Profile, GetOrCreateStreamKeyedByIpAndObject) {
  Profile P;
  uint32_t O1 = P.getOrCreateObject("a");
  uint32_t O2 = P.getOrCreateObject("b");
  StreamRecord &S1 = P.getOrCreateStream(100, O1);
  S1.SampleCount = 1;
  StreamRecord &S2 = P.getOrCreateStream(100, O2);
  S2.SampleCount = 2;
  StreamRecord &S3 = P.getOrCreateStream(200, O1);
  S3.SampleCount = 3;
  EXPECT_EQ(P.Streams.size(), 3u);
  EXPECT_EQ(P.getOrCreateStream(100, O1).SampleCount, 1u);
  EXPECT_EQ(P.getOrCreateStream(100, O2).SampleCount, 2u);
}

TEST(Profile, FindObject) {
  Profile P;
  P.getOrCreateObject("k");
  EXPECT_NE(P.findObject("k"), nullptr);
  EXPECT_EQ(P.findObject("missing"), nullptr);
}

TEST(ProfileMerge, MetadataAdds) {
  Profile A = makeSimple(0, 100, 64, 0x1040);
  Profile B = makeSimple(1, 50, 64, 0x1080);
  A.merge(B);
  EXPECT_EQ(A.TotalSamples, 10u);
  EXPECT_EQ(A.TotalLatency, 150u);
  ASSERT_EQ(A.Objects.size(), 1u);
  EXPECT_EQ(A.Objects[0].SampleCount, 10u);
  EXPECT_EQ(A.Objects[0].LatencySum, 150u);
}

TEST(ProfileMerge, StreamsCombineByGcd) {
  // Thread A saw stride gcd 128, thread B 192; gcd(128,192) = 64, and
  // the representative-address difference sharpens it further.
  Profile A = makeSimple(0, 100, 128, 0x1000);
  Profile B = makeSimple(1, 50, 192, 0x1040);
  A.merge(B);
  ASSERT_EQ(A.Streams.size(), 1u);
  // gcd(128, 192) = 64; |0x1000 - 0x1040| = 64; stays 64.
  EXPECT_EQ(A.Streams[0].StrideGcd, 64u);
  EXPECT_EQ(A.Streams[0].SampleCount, 10u);
  EXPECT_EQ(A.Streams[0].LevelSamples[0], 6u);
}

TEST(ProfileMerge, RepDiffSharpensGcd) {
  // Both profiles report gcd 0 (one unique address each), but their
  // representative addresses differ by 64: the merged stream learns
  // stride 64, as Sec. 4.4's cross-profile aggregation intends.
  Profile A = makeSimple(0, 10, 0, 0x1000);
  Profile B = makeSimple(1, 10, 0, 0x1040);
  A.merge(B);
  EXPECT_EQ(A.Streams[0].StrideGcd, 64u);
}

TEST(ProfileMerge, DifferentInstancesDoNotMixAddresses) {
  // Same allocation site but different object instances (different
  // start addresses): rep-address differences are meaningless and must
  // not contaminate the gcd.
  Profile A = makeSimple(0, 10, 128, 0x1010, /*ObjectStart=*/0x1000);
  Profile B = makeSimple(1, 10, 128, 0x2013, /*ObjectStart=*/0x2000);
  A.merge(B);
  EXPECT_EQ(A.Streams[0].StrideGcd, 128u);
}

TEST(ProfileMerge, DisjointStreamsConcatenate) {
  Profile A = makeSimple(0, 100, 64, 0x1040);
  Profile B;
  B.TotalSamples = 1;
  B.TotalLatency = 4;
  uint32_t Obj = B.getOrCreateObject("other");
  B.Objects[Obj].Name = "other";
  StreamRecord &S = B.getOrCreateStream(0x400200, Obj);
  S.SampleCount = 1;
  S.LatencySum = 4;
  A.merge(B);
  EXPECT_EQ(A.Objects.size(), 2u);
  EXPECT_EQ(A.Streams.size(), 2u);
  // Object indices were remapped into A's table.
  const StreamRecord &Merged = A.Streams[1];
  EXPECT_EQ(A.Objects[Merged.ObjectIndex].Key, "other");
}

TEST(ProfileMerge, EmptyIntoEmpty) {
  Profile A, B;
  A.merge(B);
  EXPECT_EQ(A.TotalSamples, 0u);
  EXPECT_TRUE(A.Objects.empty());
}

// --- Serialization -----------------------------------------------------------

TEST(ProfileIO, RoundTrip) {
  Profile P = makeSimple(3, 123, 64, 0x1040);
  P.Instructions = 1000;
  P.MemoryAccesses = 500;
  P.Cycles = 9999;
  P.UnattributedLatency = 7;
  std::string Text = profileToString(P);
  std::string Error;
  auto Back = profileFromString(Text, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->ThreadId, 3u);
  EXPECT_EQ(Back->SamplePeriod, 10000u);
  EXPECT_EQ(Back->TotalLatency, 123u);
  EXPECT_EQ(Back->UnattributedLatency, 7u);
  EXPECT_EQ(Back->Cycles, 9999u);
  ASSERT_EQ(Back->Objects.size(), 1u);
  EXPECT_EQ(Back->Objects[0].Key, "arr");
  ASSERT_EQ(Back->Streams.size(), 1u);
  EXPECT_EQ(Back->Streams[0].StrideGcd, 64u);
  EXPECT_EQ(Back->Streams[0].LevelSamples[0], 3u);
  // Indices re-established: the stream can be found again.
  EXPECT_EQ(Back->getOrCreateStream(0x400100, 0).SampleCount, 5u);
}

TEST(ProfileIO, RoundTripThenMergeEqualsDirectMerge) {
  Profile A = makeSimple(0, 100, 128, 0x1000);
  Profile B = makeSimple(1, 50, 192, 0x1040);
  Profile Direct = makeSimple(0, 100, 128, 0x1000);
  Direct.merge(B);

  auto A2 = profileFromString(profileToString(A));
  auto B2 = profileFromString(profileToString(B));
  ASSERT_TRUE(A2 && B2);
  A2->merge(*B2);
  EXPECT_EQ(profileToString(*A2), profileToString(Direct));
}

TEST(ProfileIO, RejectsMissingMagic) {
  std::string Error;
  EXPECT_FALSE(profileFromString("garbage\n", &Error).has_value());
  EXPECT_NE(Error.find("magic"), std::string::npos);
}

TEST(ProfileIO, RejectsUnknownRecord) {
  std::string Error;
  std::string Text = "structslim-profile v1\nmeta 0 1 0 0 0 0 0 0\nwat 1\n";
  EXPECT_FALSE(profileFromString(Text, &Error).has_value());
  EXPECT_NE(Error.find("unknown record"), std::string::npos);
}

TEST(ProfileIO, RejectsDanglingStream) {
  std::string Error;
  std::string Text = "structslim-profile v1\nmeta 0 1 0 0 0 0 0 0\n"
                     "stream 5 3 0 0 8 1 1 1 0 0 0 0 0 0 0 0 0\n";
  EXPECT_FALSE(profileFromString(Text, &Error).has_value());
  EXPECT_NE(Error.find("unknown object"), std::string::npos);
}

TEST(ProfileIO, RejectsMissingMeta) {
  std::string Error;
  EXPECT_FALSE(
      profileFromString("structslim-profile v1\n", &Error).has_value());
  EXPECT_NE(Error.find("no meta"), std::string::npos);
}

// --- Reduction tree -----------------------------------------------------------

TEST(MergeTree, EmptyInput) {
  Profile P = mergeProfiles({});
  EXPECT_EQ(P.TotalSamples, 0u);
}

TEST(MergeTree, SingleProfilePassesThrough) {
  std::vector<Profile> In;
  In.push_back(makeSimple(0, 100, 64, 0x1040));
  Profile Out = mergeProfiles(std::move(In));
  EXPECT_EQ(Out.TotalLatency, 100u);
}

TEST(MergeTree, TotalsIndependentOfCount) {
  for (size_t Count : {2u, 3u, 4u, 5u, 8u, 13u}) {
    std::vector<Profile> In;
    uint64_t WantLatency = 0;
    for (size_t I = 0; I != Count; ++I) {
      In.push_back(makeSimple(static_cast<uint32_t>(I), 10 * (I + 1), 64,
                              0x1000 + 64 * I));
      WantLatency += 10 * (I + 1);
    }
    Profile Out = mergeProfiles(std::move(In));
    EXPECT_EQ(Out.TotalLatency, WantLatency) << Count << " profiles";
    EXPECT_EQ(Out.TotalSamples, 5 * Count);
    ASSERT_EQ(Out.Streams.size(), 1u);
    EXPECT_EQ(Out.Streams[0].StrideGcd, 64u);
  }
}

TEST(MergeTree, ParallelMatchesSerial) {
  auto Build = [] {
    std::vector<Profile> In;
    for (uint32_t I = 0; I != 9; ++I)
      In.push_back(makeSimple(I, 7 * (I + 1), 64 << (I % 3),
                              0x1000 + 64 * I));
    return In;
  };
  Profile Serial = mergeProfiles(Build(), 1);
  Profile Parallel = mergeProfiles(Build(), 4);
  EXPECT_EQ(Serial.TotalLatency, Parallel.TotalLatency);
  EXPECT_EQ(Serial.TotalSamples, Parallel.TotalSamples);
  ASSERT_EQ(Serial.Streams.size(), Parallel.Streams.size());
  EXPECT_EQ(Serial.Streams[0].StrideGcd, Parallel.Streams[0].StrideGcd);
  EXPECT_EQ(Serial.Streams[0].SampleCount, Parallel.Streams[0].SampleCount);
}
