//===- tests/dominators_test.cpp - Dominator-tree tests --------*- C++ -*-===//

#include "analysis/Dominators.h"
#include "ir/Program.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace structslim;
using namespace structslim::analysis;

namespace {

/// Builds a function whose CFG is given by adjacency lists. Block
/// contents are irrelevant to the dominator computation; each block
/// gets a filler terminator-shaped instruction.
std::unique_ptr<ir::Function> makeCfg(
    const std::vector<std::vector<uint32_t>> &Succs) {
  auto F = std::make_unique<ir::Function>();
  F->Name = "cfg";
  for (size_t I = 0; I != Succs.size(); ++I) {
    auto BB = std::make_unique<ir::BasicBlock>();
    BB->Id = static_cast<uint32_t>(I);
    ir::Instr Term;
    Term.Op = Succs[I].empty()
                  ? ir::Opcode::Ret
                  : (Succs[I].size() == 1 ? ir::Opcode::Br
                                          : ir::Opcode::CondBr);
    BB->Instrs.push_back(Term);
    BB->Succs = Succs[I];
    F->Blocks.push_back(std::move(BB));
  }
  return F;
}

/// Reference dominance: A dom B iff B is unreachable when A is removed.
bool refDominates(const std::vector<std::vector<uint32_t>> &Succs,
                  uint32_t A, uint32_t B) {
  if (A == B)
    return true;
  std::vector<bool> Visited(Succs.size(), false);
  std::vector<uint32_t> Stack;
  if (A != 0) {
    Stack.push_back(0);
    Visited[0] = true;
  }
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (uint32_t S : Succs[Cur]) {
      if (S == A || Visited[S])
        continue;
      Visited[S] = true;
      Stack.push_back(S);
    }
  }
  return !Visited[B];
}

bool refReachable(const std::vector<std::vector<uint32_t>> &Succs,
                  uint32_t B) {
  std::vector<bool> Visited(Succs.size(), false);
  std::vector<uint32_t> Stack{0};
  Visited[0] = true;
  while (!Stack.empty()) {
    uint32_t Cur = Stack.back();
    Stack.pop_back();
    for (uint32_t S : Succs[Cur])
      if (!Visited[S]) {
        Visited[S] = true;
        Stack.push_back(S);
      }
  }
  return Visited[B];
}

} // namespace

TEST(Dominators, Diamond) {
  //    0
  //   / .
  //  1   2
  //   \ /
  //    3
  auto F = makeCfg({{1, 2}, {3}, {3}, {}});
  DominatorTree DT(*F);
  EXPECT_EQ(DT.getIdom(1), 0);
  EXPECT_EQ(DT.getIdom(2), 0);
  EXPECT_EQ(DT.getIdom(3), 0); // Neither branch dominates the join.
  EXPECT_TRUE(DT.dominates(0, 3));
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_TRUE(DT.dominates(2, 2));
}

TEST(Dominators, Chain) {
  auto F = makeCfg({{1}, {2}, {3}, {}});
  DominatorTree DT(*F);
  EXPECT_EQ(DT.getIdom(3), 2);
  EXPECT_TRUE(DT.dominates(1, 3));
  EXPECT_FALSE(DT.dominates(3, 1));
}

TEST(Dominators, LoopBackEdge) {
  // 0 -> 1 <-> 2, 1 -> 3
  auto F = makeCfg({{1}, {2, 3}, {1}, {}});
  DominatorTree DT(*F);
  EXPECT_EQ(DT.getIdom(2), 1);
  EXPECT_EQ(DT.getIdom(3), 1);
  EXPECT_TRUE(DT.dominates(1, 2));
}

TEST(Dominators, UnreachableBlocks) {
  auto F = makeCfg({{1}, {}, {1}}); // Block 2 unreachable.
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.isReachable(1));
  EXPECT_FALSE(DT.isReachable(2));
  EXPECT_FALSE(DT.dominates(2, 1));
  EXPECT_FALSE(DT.dominates(0, 2));
}

TEST(Dominators, EntryDominatesEverythingReachable) {
  auto F = makeCfg({{1, 2}, {2}, {0}});
  DominatorTree DT(*F);
  for (uint32_t B = 0; B != 3; ++B)
    EXPECT_TRUE(DT.dominates(0, B));
}

TEST(Dominators, RpoCoversReachableOnly) {
  auto F = makeCfg({{1}, {}, {1}});
  DominatorTree DT(*F);
  EXPECT_EQ(DT.getRpo().size(), 2u);
  EXPECT_EQ(DT.getRpo().front(), 0u);
}

// Property: on random CFGs, dominates() agrees with the brute-force
// removal-based definition for every pair of blocks.
class DominatorsRandom : public ::testing::TestWithParam<int> {};

TEST_P(DominatorsRandom, MatchesBruteForce) {
  Rng R(1000 + GetParam());
  size_t N = 4 + R.nextBelow(9); // 4..12 blocks.
  std::vector<std::vector<uint32_t>> Succs(N);
  for (size_t I = 0; I != N; ++I) {
    unsigned Fanout = static_cast<unsigned>(R.nextBelow(3)); // 0..2
    for (unsigned S = 0; S != Fanout; ++S)
      Succs[I].push_back(static_cast<uint32_t>(R.nextBelow(N)));
  }
  auto F = makeCfg(Succs);
  DominatorTree DT(*F);
  for (uint32_t A = 0; A != N; ++A)
    for (uint32_t B = 0; B != N; ++B) {
      if (!refReachable(Succs, A) || !refReachable(Succs, B)) {
        EXPECT_FALSE(DT.dominates(A, B));
        continue;
      }
      EXPECT_EQ(DT.dominates(A, B), refDominates(Succs, A, B))
          << "blocks " << A << " -> " << B;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCfgs, DominatorsRandom,
                         ::testing::Range(0, 25));
