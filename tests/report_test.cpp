//===- tests/report_test.cpp - Report rendering tests ----------*- C++ -*-===//

#include "core/Report.h"
#include "ir/ProgramBuilder.h"
#include "profile/MergeTree.h"
#include "runtime/ThreadedRuntime.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;
using structslim::ir::Reg;

namespace {

/// A program that heap-allocates through a helper (two-deep allocation
/// call path) and scans the array in a loop.
struct AllocProgram {
  ir::Program P;
  uint32_t MainId = 0;

  AllocProgram() {
    ir::Function &Mk = P.addFunction("make_nodes", 1);
    {
      ir::ProgramBuilder B(P, Mk);
      B.setLine(50);
      B.ret(B.alloc(0, "nodes"));
    }
    ir::Function &Main = P.addFunction("main", 0);
    MainId = Main.Id;
    P.setEntry(MainId);
    {
      ir::ProgramBuilder B(P, Main);
      B.setLine(7);
      Reg Bytes = B.constI(64 * 1024);
      Reg Base = B.call(Mk, {Bytes});
      Reg Acc = B.constI(0);
      B.setLine(9);
      B.forLoopI(0, 200000, 1, [&](Reg I) {
        B.setLine(10);
        Reg Idx = B.andI(I, 1023);
        B.accumulate(Acc, B.load(Base, Idx, 64, 0, 8));
        B.setLine(9);
      });
      B.ret(Acc);
    }
  }
};

} // namespace

TEST(Report, HotObjectsResolveAllocationSites) {
  AllocProgram Prog;
  analysis::CodeMap Map(Prog.P);
  runtime::RunConfig Cfg;
  Cfg.Sampling.Period = 1000;
  runtime::ThreadedRuntime RT(Cfg);
  RT.runPhase(Prog.P, &Map, {runtime::ThreadSpec{Prog.MainId, {}}});
  runtime::RunResult R = RT.finish();
  profile::Profile Merged = profile::mergeProfiles(std::move(R.Profiles));

  StructSlimAnalyzer Analyzer(Map);
  AnalysisResult Result = Analyzer.analyze(Merged);
  ASSERT_FALSE(Result.Objects.empty());
  EXPECT_EQ(Result.Objects[0].Name, "nodes");

  // Without a code map: no allocation column.
  std::string Plain = renderHotObjects(Result);
  EXPECT_EQ(Plain.find("Allocated at"), std::string::npos);

  // With one: the two-deep call path resolves to function:line.
  std::string WithSites = renderHotObjects(Result, &Map);
  EXPECT_NE(WithSites.find("Allocated at"), std::string::npos);
  EXPECT_NE(WithSites.find("main:L7 > make_nodes:L50"), std::string::npos);
}

TEST(Report, StaticObjectsMarkedStatic) {
  AnalysisResult Result;
  ObjectAnalysis O;
  O.Name = "globals";
  O.Key = "globals"; // No '@': a symbol-table object.
  O.SampleCount = 3;
  O.LatencySum = 12;
  O.HotShare = 1.0;
  Result.Objects.push_back(O);
  Result.TotalLatency = 12;

  // Any CodeMap works; build a trivial one.
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  B.ret();
  analysis::CodeMap Map(P);
  std::string Out = renderHotObjects(Result, &Map);
  EXPECT_NE(Out.find("(static)"), std::string::npos);
}

TEST(Report, FieldTableRendersShares) {
  ObjectAnalysis O;
  O.Name = "s";
  O.LatencySum = 100;
  FieldStat F;
  F.Name = "hot";
  F.Offset = 8;
  F.LatencyShare = 0.733;
  F.SampleCount = 42;
  O.Fields.push_back(F);
  std::string Out = renderFieldTable(O);
  EXPECT_NE(Out.find("hot"), std::string::npos);
  EXPECT_NE(Out.find("73.3%"), std::string::npos);
  EXPECT_NE(Out.find("42"), std::string::npos);
}

TEST(Report, LoopTableNamesFields) {
  ObjectAnalysis O;
  O.Name = "s";
  FieldStat F;
  F.Name = "P";
  F.Offset = 40;
  O.Fields.push_back(F);
  LoopStat L;
  L.LoopName = "615-616";
  L.LatencyShare = 0.5657;
  L.Offsets = {40, 48}; // 48 has no FieldStat: falls back to offset.
  O.Loops.push_back(L);
  std::string Out = renderLoopTable(O);
  EXPECT_NE(Out.find("615-616"), std::string::npos);
  EXPECT_NE(Out.find("P, off48"), std::string::npos);
  EXPECT_NE(Out.find("56.6%"), std::string::npos);
}

TEST(Report, FieldLevelTableSharesSumAndRender) {
  ObjectAnalysis O;
  FieldStat F;
  F.Name = "dist";
  F.SampleCount = 10;
  F.LevelSamples = {5, 2, 2, 1};
  O.Fields.push_back(F);
  FieldStat Cold;
  Cold.Name = "entry";
  Cold.SampleCount = 0;
  O.Fields.push_back(Cold);
  std::string Out = renderFieldLevelTable(O);
  EXPECT_NE(Out.find("dist"), std::string::npos);
  EXPECT_NE(Out.find("50.0%"), std::string::npos); // L1 share.
  EXPECT_NE(Out.find("10.0%"), std::string::npos); // DRAM share.
  // Zero-sample fields render dashes, not NaNs.
  EXPECT_NE(Out.find("| entry | -"), std::string::npos);
}

TEST(Report, EmptyAnalysisRendersHeaderOnly) {
  AnalysisResult Result;
  std::string Out = renderHotObjects(Result);
  EXPECT_NE(Out.find("Data object"), std::string::npos);
}
