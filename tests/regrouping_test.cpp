//===- tests/regrouping_test.cpp - Array-regrouping analysis ---*- C++ -*-===//

#include "core/Regrouping.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;
using structslim::profile::Profile;
using structslim::profile::StreamRecord;

namespace {

/// Adds one stream of \p Latency for \p Object in \p LoopId.
void addStream(Profile &Prof, const std::string &Object, uint64_t Ip,
               int32_t LoopId, uint64_t Latency, uint64_t Stride = 8,
               uint8_t AccessSize = 8) {
  uint32_t Idx = Prof.getOrCreateObject(Object);
  profile::ObjectAgg &Agg = Prof.Objects[Idx];
  if (Agg.Name.empty())
    Agg.Name = Object;
  Agg.SampleCount += 1;
  Agg.LatencySum += Latency;
  Prof.TotalSamples += 1;
  Prof.TotalLatency += Latency;
  StreamRecord &S = Prof.getOrCreateStream(Ip, Idx);
  S.LoopId = LoopId;
  S.AccessSize = AccessSize;
  S.SampleCount += 1;
  S.LatencySum += Latency;
  S.UniqueAddrCount = 16; // Clears the default Eq. 4 bar (>= 10).
  S.StrideGcd = Stride;
}

} // namespace

TEST(ArrayAffinity, PairsSharingAllLoopsScoreOne) {
  Profile Prof;
  addStream(Prof, "px", 1, 0, 100);
  addStream(Prof, "py", 2, 0, 100);
  auto Pairs = analyzeArrayAffinity(Prof);
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_NEAR(Pairs[0].Affinity, 1.0, 1e-9);
}

TEST(ArrayAffinity, DisjointLoopsScoreZero) {
  Profile Prof;
  addStream(Prof, "a", 1, 0, 100);
  addStream(Prof, "b", 2, 1, 100);
  auto Pairs = analyzeArrayAffinity(Prof);
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0].Affinity, 0.0);
}

TEST(ArrayAffinity, Equation7LiftedExactly) {
  // Loop 0: a (30) and b (10); loop 1: a alone (60).
  // A(a,b) = (30 + 10) / (90 + 10) = 0.4.
  Profile Prof;
  addStream(Prof, "a", 1, 0, 30);
  addStream(Prof, "b", 2, 0, 10);
  addStream(Prof, "a", 3, 1, 60);
  auto Pairs = analyzeArrayAffinity(Prof);
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_NEAR(Pairs[0].Affinity, 0.4, 1e-9);
}

TEST(ArrayAffinity, PairsSortedByAffinity) {
  Profile Prof;
  addStream(Prof, "a", 1, 0, 50);
  addStream(Prof, "b", 2, 0, 50);
  addStream(Prof, "c", 3, 1, 50);
  auto Pairs = analyzeArrayAffinity(Prof);
  ASSERT_EQ(Pairs.size(), 3u);
  EXPECT_NEAR(Pairs[0].Affinity, 1.0, 1e-9); // a-b first.
  EXPECT_EQ(Pairs[1].Affinity, 0.0);
}

TEST(ArrayAffinity, ColdObjectsExcluded) {
  Profile Prof;
  addStream(Prof, "hot1", 1, 0, 5000);
  addStream(Prof, "hot2", 2, 0, 4000);
  addStream(Prof, "cold", 3, 0, 10); // ~0.1% < MinObjectShare.
  auto Pairs = analyzeArrayAffinity(Prof);
  EXPECT_EQ(Pairs.size(), 1u);
}

TEST(RegroupAdvice, GroupsHighAffinityArrays) {
  Profile Prof;
  addStream(Prof, "px", 1, 0, 100, 8);
  addStream(Prof, "py", 2, 0, 100, 8);
  addStream(Prof, "charge", 3, 1, 80, 8);
  RegroupAdvice Advice = adviseRegrouping(Prof);
  ASSERT_EQ(Advice.Groups.size(), 1u);
  ASSERT_EQ(Advice.Groups[0].Arrays.size(), 2u);
  // px is hotter-first in the monitored ordering.
  EXPECT_EQ(Advice.Groups[0].Arrays[0], "px");
  EXPECT_EQ(Advice.Groups[0].Arrays[1], "py");
  EXPECT_EQ(Advice.Groups[0].LatencySum, 200u);
}

TEST(RegroupAdvice, SingletonGroupsSuppressed) {
  Profile Prof;
  addStream(Prof, "a", 1, 0, 100);
  addStream(Prof, "b", 2, 1, 100);
  RegroupAdvice Advice = adviseRegrouping(Prof);
  EXPECT_TRUE(Advice.Groups.empty());
}

TEST(RegroupAdvice, ThresholdControlsGrouping) {
  // Affinity 0.4 pair: grouped only when the threshold drops.
  Profile Prof;
  addStream(Prof, "a", 1, 0, 30);
  addStream(Prof, "b", 2, 0, 10);
  addStream(Prof, "a", 3, 1, 60);
  EXPECT_TRUE(adviseRegrouping(Prof).Groups.empty());
  AnalysisConfig Loose;
  Loose.AffinityThreshold = 0.3;
  EXPECT_EQ(adviseRegrouping(Prof, Loose).Groups.size(), 1u);
}

TEST(RegroupAdvice, ReportsStrides) {
  Profile Prof;
  addStream(Prof, "px", 1, 0, 100, /*Stride=*/16);
  addStream(Prof, "py", 2, 0, 100, /*Stride=*/24);
  RegroupAdvice Advice = adviseRegrouping(Prof);
  ASSERT_EQ(Advice.Groups.size(), 1u);
  EXPECT_EQ(Advice.Groups[0].Strides,
            (std::vector<uint64_t>{16, 24}));
}

TEST(RegroupAdvice, EmptyProfile) {
  Profile Prof;
  EXPECT_TRUE(analyzeArrayAffinity(Prof).empty());
  EXPECT_TRUE(adviseRegrouping(Prof).Groups.empty());
}

TEST(RegroupAdvice, TransitiveGrouping) {
  // a-b share loop 0, b-c share loop 1: the union groups all three.
  Profile Prof;
  addStream(Prof, "a", 1, 0, 100);
  addStream(Prof, "b", 2, 0, 100);
  addStream(Prof, "b", 3, 1, 100);
  addStream(Prof, "c", 4, 1, 100);
  RegroupAdvice Advice = adviseRegrouping(Prof);
  ASSERT_EQ(Advice.Groups.size(), 1u);
  EXPECT_EQ(Advice.Groups[0].Arrays.size(), 3u);
}
