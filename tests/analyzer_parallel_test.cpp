//===- tests/analyzer_parallel_test.cpp - Parallel analyzer ----*- C++ -*-===//
//
// The parallel offline analyzer must be byte-identical to the serial
// path: per-object analyses are independent, counters aggregate in
// object order, and integer affinity sums are order-exact. This suite
// proves it differentially over randomized profiles — every rendered
// surface (hot-object table, per-object tables, advice, DOT, JSON) is
// compared as bytes between --jobs=1 and --jobs=4 runs, twice at
// jobs=4 to also catch schedule-dependent output.
//
// Labeled `tsan` so the ThreadSanitizer preset covers the analyzer's
// fan-out alongside the parallel phase engine.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "core/Report.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;
using structslim::profile::Profile;
using structslim::profile::StreamRecord;

namespace {

/// Builds a randomized many-object, many-loop profile. Seeded: the
/// same seed always builds the same profile.
Profile makeRandomProfile(uint64_t Seed) {
  Rng R(Seed);
  Profile Prof;
  Prof.SamplePeriod = 10000;
  unsigned NumObjects = 1 + static_cast<unsigned>(R.nextBelow(24));
  for (unsigned Obj = 0; Obj != NumObjects; ++Obj) {
    std::string Name = "obj" + std::to_string(Obj);
    uint32_t Idx = Prof.getOrCreateObject(Name);
    uint64_t Start = 0x10000 * (Obj + 1);
    profile::ObjectAgg &Agg = Prof.Objects[Idx];
    Agg.Name = Name;
    Agg.Start = Start;
    Agg.Size = 1 << 20;
    unsigned NumStreams = 1 + static_cast<unsigned>(R.nextBelow(40));
    for (unsigned S = 0; S != NumStreams; ++S) {
      uint64_t Latency = 1 + R.nextBelow(1000);
      Agg.SampleCount += 1;
      Agg.LatencySum += Latency;
      Prof.TotalSamples += 1;
      Prof.TotalLatency += Latency;
      StreamRecord &Rec =
          Prof.getOrCreateStream(/*Ip=*/(Obj << 16) | S, Idx);
      Rec.LoopId = static_cast<int32_t>(R.nextBelow(12)) - 1; // -1..10.
      Rec.AccessSize = 8;
      Rec.SampleCount += 1;
      Rec.LatencySum += Latency;
      Rec.UniqueAddrCount = 1 + R.nextBelow(20);
      Rec.StrideGcd = 8ull << R.nextBelow(5); // 8..128.
      Rec.ObjectStart = Start;
      // Mostly valid representative addresses; ~1 in 8 streams is
      // inconsistent (RepAddr below the object base) to exercise the
      // skip path under both executors.
      Rec.RepAddr = R.nextBelow(8) == 0 ? Start - 64 - R.nextBelow(256)
                                        : Start + R.nextBelow(4096);
    }
  }
  return Prof;
}

/// Renders every surface of the analysis into one string.
std::string renderEverything(const AnalysisResult &Result,
                             const Profile &Prof,
                             const AnalysisConfig &Config) {
  std::string Out = renderHotObjects(Result);
  for (const ObjectAnalysis &O : Result.Objects) {
    Out += renderFieldTable(O);
    Out += renderFieldLevelTable(O);
    Out += renderLoopTable(O);
    Out += renderAffinityMatrix(O);
    Out += renderAdviceText(makeSplitPlan(O), O);
    Out += affinityGraphDot(O);
  }
  // Fixed (zero) stats: the timing fields are the one part of the JSON
  // that legitimately differs between runs.
  Out += renderJsonReport(Result, Prof, Config, ReportStats(), {});
  return Out;
}

} // namespace

TEST(AnalyzerParallel, ByteIdenticalToSerialOnRandomProfiles) {
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    Profile Prof = makeRandomProfile(Seed);

    AnalysisConfig Serial;
    Serial.TopObjects = 8;
    Serial.Jobs = 1;
    AnalysisConfig Parallel = Serial;
    Parallel.Jobs = 4;

    AnalysisResult SerialResult =
        StructSlimAnalyzer(Serial).analyze(Prof);
    AnalysisResult ParallelResult =
        StructSlimAnalyzer(Parallel).analyze(Prof);
    AnalysisResult ParallelAgain =
        StructSlimAnalyzer(Parallel).analyze(Prof);

    std::string SerialText = renderEverything(SerialResult, Prof, Serial);
    std::string ParallelText =
        renderEverything(ParallelResult, Prof, Parallel);
    std::string ParallelAgainText =
        renderEverything(ParallelAgain, Prof, Parallel);
    // The config block prints the requested job count, which is the
    // one intended difference; neutralize it before comparing.
    size_t Pos;
    std::string JobsOne = "\"jobs\": 1", JobsFour = "\"jobs\": 4";
    while ((Pos = ParallelText.find(JobsFour)) != std::string::npos)
      ParallelText.replace(Pos, JobsFour.size(), JobsOne);
    while ((Pos = ParallelAgainText.find(JobsFour)) != std::string::npos)
      ParallelAgainText.replace(Pos, JobsFour.size(), JobsOne);

    ASSERT_EQ(SerialText, ParallelText) << "seed " << Seed;
    ASSERT_EQ(ParallelText, ParallelAgainText) << "seed " << Seed;
  }
}

TEST(AnalyzerParallel, AutoJobsMatchesSerialToo) {
  Profile Prof = makeRandomProfile(12345);
  AnalysisConfig Auto; // Jobs = 0: defaultThreadCount.
  Auto.TopObjects = 6;
  AnalysisConfig Serial = Auto;
  Serial.Jobs = 1;
  AnalysisResult A = StructSlimAnalyzer(Auto).analyze(Prof);
  AnalysisResult B = StructSlimAnalyzer(Serial).analyze(Prof);
  EXPECT_EQ(renderHotObjects(A), renderHotObjects(B));
  ASSERT_EQ(A.Objects.size(), B.Objects.size());
  for (size_t I = 0; I != A.Objects.size(); ++I) {
    EXPECT_EQ(A.Objects[I].Affinity, B.Objects[I].Affinity);
    EXPECT_EQ(A.Objects[I].Clusters, B.Objects[I].Clusters);
    EXPECT_EQ(A.Objects[I].SkippedStreams, B.Objects[I].SkippedStreams);
  }
  EXPECT_EQ(A.Stats.SkippedInconsistentStreams,
            B.Stats.SkippedInconsistentStreams);
}
