//===- tests/advice_golden_test.cpp - Golden advice regression -*- C++ -*-===//
//
// Pins the end of the analysis pipeline for every paper workload: the
// rendered advice text (the Fig. 7-13 presentation) and the
// machine-readable SplitPlan JSON, produced under a fixed DriverConfig
// (scale 0.1, default sampling seed/period, inline serial oracle), are
// compared byte-for-byte against goldens in tests/data/. Any change to
// sampling, merging, analysis, clustering or rendering that shifts the
// advice shows up as a diff here instead of drifting silently.
//
// Regenerate after an intentional change with
//   tests/regen_advice_goldens.sh <build-dir>
// (which reruns this binary with STRUCTSLIM_REGEN_GOLDENS=1).
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace structslim;

namespace {

/// "CLOMP 1.2" -> "clomp_1_2" (portable file names).
std::string slugOf(const std::string &Name) {
  std::string Slug;
  for (char C : Name)
    Slug += std::isalnum(static_cast<unsigned char>(C))
                ? static_cast<char>(
                      std::tolower(static_cast<unsigned char>(C)))
                : '_';
  return Slug;
}

std::string goldenPath(const std::string &WorkloadName) {
  return std::string(STRUCTSLIM_TEST_DATA) + "/advice_" +
         slugOf(WorkloadName) + ".golden";
}

/// The pinned configuration. Every knob that feeds the advice is
/// explicit here; changing any of them is a golden regeneration.
workloads::DriverConfig pinnedConfig() {
  workloads::DriverConfig Config;
  Config.Scale = 0.1;
  Config.Run.Engine = runtime::EngineKind::Serial;
  Config.Run.Pipeline = runtime::PipelineKind::Inline;
  Config.WorkerThreads = 1;
  Config.Analysis.Jobs = 1;
  return Config;
}

/// Profile + analyze + advise, rendered as one deterministic document.
std::string adviceDocument(const workloads::Workload &W) {
  workloads::DriverConfig Config = pinnedConfig();
  ir::StructLayout Hot = W.hotLayout();
  transform::FieldMap Identity(Hot);
  workloads::WorkloadRun Run =
      workloads::runWorkload(W, Identity, Config, /*Attach=*/true);
  core::StructSlimAnalyzer Analyzer(*Run.CodeMap, Config.Analysis);
  Analyzer.registerLayout(W.hotObjectName(), Hot);
  core::AnalysisResult Analysis = Analyzer.analyze(Run.Merged);

  const core::ObjectAnalysis *HotObj =
      Analysis.findObject(W.hotObjectName());
  std::ostringstream OS;
  OS << "# advice golden: " << W.name() << " (" << W.suite() << ")\n";
  if (!HotObj) {
    OS << "hot object '" << W.hotObjectName()
       << "' not significant in the profile\n";
    return OS.str();
  }
  core::SplitPlan Plan = core::makeSplitPlan(*HotObj, &Hot);
  OS << core::renderAdviceText(Plan, *HotObj, &Hot);
  OS << core::renderSplitPlanJson(Plan) << "\n";
  return OS.str();
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

bool regenRequested() {
  const char *Env = std::getenv("STRUCTSLIM_REGEN_GOLDENS");
  return Env && *Env && std::string(Env) != "0";
}

class AdviceGolden : public ::testing::TestWithParam<size_t> {};

} // namespace

TEST_P(AdviceGolden, MatchesCheckedInAdvice) {
  auto Workloads = workloads::makePaperWorkloads();
  ASSERT_LT(GetParam(), Workloads.size());
  const workloads::Workload &W = *Workloads[GetParam()];
  std::string Document = adviceDocument(W);
  std::string Path = goldenPath(W.name());

  if (regenRequested()) {
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Document;
    GTEST_SKIP() << "regenerated " << Path;
  }

  std::string Golden = readFileBytes(Path);
  ASSERT_FALSE(Golden.empty())
      << "missing golden " << Path
      << " (run tests/regen_advice_goldens.sh to create it)";
  EXPECT_EQ(Document, Golden)
      << "advice drifted from " << Path
      << "; regenerate via tests/regen_advice_goldens.sh if intentional";
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, AdviceGolden,
                         ::testing::Range<size_t>(0, 7),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           auto Ws = workloads::makePaperWorkloads();
                           return slugOf(Ws[Info.param]->name());
                         });

// The advice every workload pins must actually recommend a split —
// the goldens would otherwise freeze a regression of the clustering.
TEST(AdviceGolden, EverySevenWorkloadAdviceRecommendsASplit) {
  for (const auto &W : workloads::makePaperWorkloads()) {
    std::string Document = adviceDocument(*W);
    EXPECT_NE(Document.find("StructSlim advice: split"), std::string::npos)
        << W->name() << ":\n"
        << Document;
    EXPECT_NE(Document.find("\"split\": true"), std::string::npos)
        << W->name();
  }
}
