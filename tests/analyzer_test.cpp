//===- tests/analyzer_test.cpp - Offline analyzer tests --------*- C++ -*-===//
//
// Hand-built profiles with exactly known contents verify each analysis
// of paper Sec. 4: the hot-data filter (Eq. 1), structure-size
// inference (Eq. 5), field-offset identification (Eq. 6) and the
// latency-based affinity (Eq. 7) with its clustering.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "ir/Program.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;
using structslim::profile::Profile;
using structslim::profile::StreamRecord;

namespace {

/// An empty program: the CodeMap is only consulted for loop names; the
/// hand-built profiles use loop id -1 region names or synthetic ids.
class AnalyzerTest : public ::testing::Test {
protected:
  AnalyzerTest() {
    ir::Function &F = P.addFunction("main", 0);
    ir::ProgramBuilder B(P, F);
    B.setLine(100);
    B.forLoopI(0, 2, 1, [&](ir::Reg) { B.setLine(101); B.work(0); });
    B.setLine(200);
    B.forLoopI(0, 2, 1, [&](ir::Reg) { B.setLine(201); B.work(0); });
    B.ret();
    Map = std::make_unique<analysis::CodeMap>(P);
  }

  /// Adds a stream to \p Prof.
  StreamRecord &addStream(Profile &Prof, const std::string &Object,
                          uint64_t Ip, int32_t LoopId, uint64_t Latency,
                          uint64_t Stride, uint64_t RepAddr,
                          uint64_t UniqueAddrs = 16, uint8_t AccessSize = 8,
                          uint64_t ObjectStart = 0x10000) {
    uint32_t Idx = Prof.getOrCreateObject(Object);
    profile::ObjectAgg &Agg = Prof.Objects[Idx];
    if (Agg.Name.empty()) {
      Agg.Name = Object;
      Agg.Start = ObjectStart;
      Agg.Size = 1 << 20;
    }
    Agg.SampleCount += 1;
    Agg.LatencySum += Latency;
    Prof.TotalSamples += 1;
    Prof.TotalLatency += Latency;
    StreamRecord &S = Prof.getOrCreateStream(Ip, Idx);
    S.LoopId = LoopId;
    S.Line = 0;
    S.AccessSize = AccessSize;
    S.SampleCount += 1;
    S.LatencySum += Latency;
    S.UniqueAddrCount = UniqueAddrs;
    S.StrideGcd = Stride;
    S.RepAddr = RepAddr;
    S.ObjectStart = ObjectStart;
    return S;
  }

  ir::Program P;
  std::unique_ptr<analysis::CodeMap> Map;
};

} // namespace

TEST_F(AnalyzerTest, HotDataRankingAndShares) {
  Profile Prof;
  addStream(Prof, "hot", 1, 0, 800, 64, 0x10000);
  addStream(Prof, "warm", 2, 0, 150, 64, 0x10000);
  addStream(Prof, "cold", 3, 0, 50, 64, 0x10000);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 3u);
  EXPECT_EQ(R.Objects[0].Name, "hot");
  EXPECT_NEAR(R.Objects[0].HotShare, 0.8, 1e-9);
  EXPECT_EQ(R.Objects[1].Name, "warm");
  EXPECT_NEAR(R.Objects[1].HotShare, 0.15, 1e-9);
  EXPECT_EQ(R.Objects[2].Name, "cold");
}

TEST_F(AnalyzerTest, TopObjectsCapApplies) {
  Profile Prof;
  for (int I = 0; I != 6; ++I)
    addStream(Prof, "obj" + std::to_string(I), 10 + I, 0,
              1000 - 100 * I, 64, 0x10000);
  AnalysisConfig Cfg;
  Cfg.TopObjects = 3; // The paper's "top three suffice".
  StructSlimAnalyzer Analyzer(*Map, Cfg);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects.size(), 3u);
  EXPECT_EQ(R.Objects[0].Name, "obj0");
}

TEST_F(AnalyzerTest, MinShareFilters) {
  Profile Prof;
  addStream(Prof, "big", 1, 0, 9950, 64, 0x10000);
  addStream(Prof, "tiny", 2, 0, 50, 64, 0x10000); // 0.5% < 1%.
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  EXPECT_EQ(R.Objects[0].Name, "big");
}

TEST_F(AnalyzerTest, StructSizeFromGcdOfStreams) {
  // Streams with strides 128 and 192: struct size gcd = 64 (Eq. 5).
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 128, 0x10000);
  addStream(Prof, "arr", 2, 0, 100, 192, 0x10008);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  EXPECT_EQ(R.Objects[0].StructSize, 64u);
}

TEST_F(AnalyzerTest, UnitStrideStreamsExcludedFromSize) {
  // A unit-stride stream (stride == access size) must not drag the
  // inferred struct size down to the element size.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 64, 0x10000);
  addStream(Prof, "arr", 2, 0, 100, 8, 0x10008, 8, 8); // Unit stride.
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects[0].StructSize, 64u);
}

TEST_F(AnalyzerTest, LowSampleStreamsExcludedFromSize) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 64, 0x10000, /*UniqueAddrs=*/8);
  // This stream's gcd (96) is unreliable: only 1 unique address.
  addStream(Prof, "arr", 2, 0, 100, 96, 0x10008, /*UniqueAddrs=*/1);
  AnalysisConfig Cfg;
  Cfg.MinUniqueAddrs = 2;
  StructSlimAnalyzer Analyzer(*Map, Cfg);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects[0].StructSize, 64u);
}

TEST_F(AnalyzerTest, NoStridedStreamMeansNoStructure) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 8, 0x10000); // Unit stride only.
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects[0].StructSize, 0u);
  // Everything collapses to one logical field at offset 0.
  ASSERT_EQ(R.Objects[0].Fields.size(), 1u);
  EXPECT_EQ(R.Objects[0].Fields[0].Offset, 0u);
  EXPECT_FALSE(R.Objects[0].splitRecommended());
}

TEST_F(AnalyzerTest, FieldOffsetsModuloSize) {
  // Eq. 6: offset = (rep - start) mod size. Element 3's field at +8:
  // rep = start + 3*64 + 8.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 64, 0x10000 + 3 * 64 + 8);
  addStream(Prof, "arr", 2, 0, 100, 64, 0x10000 + 7 * 64 + 24);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects[0].Fields.size(), 2u);
  EXPECT_EQ(R.Objects[0].Fields[0].Offset, 8u);
  EXPECT_EQ(R.Objects[0].Fields[1].Offset, 24u);
}

TEST_F(AnalyzerTest, FieldNamesFromRegisteredLayout) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 16, 0x10000);
  addStream(Prof, "arr", 2, 0, 100, 16, 0x10008);
  ir::StructLayout L("arr");
  L.addField("head", 8);
  L.addField("tail", 8);
  L.finalize();
  StructSlimAnalyzer Analyzer(*Map);
  Analyzer.registerLayout("arr", L);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects[0].Fields[0].Name, "head");
  EXPECT_EQ(R.Objects[0].Fields[1].Name, "tail");
}

TEST_F(AnalyzerTest, FieldNamesFallBackToOffsets) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 16, 0x10008);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects[0].Fields[0].Name, "off8");
}

TEST_F(AnalyzerTest, AffinityEquation7Exact) {
  // Loop 0: fields A(0) and B(8), latencies 30 and 10.
  // Loop 1: field A alone, latency 60.
  // A_ab = (30 + 10) / ((30 + 60) + 10) = 0.4.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 30, 64, 0x10000);
  addStream(Prof, "arr", 2, 0, 10, 64, 0x10008);
  addStream(Prof, "arr", 3, 1, 60, 64, 0x10000 + 128);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  const ObjectAnalysis &O = R.Objects[0];
  ASSERT_EQ(O.Fields.size(), 2u);
  EXPECT_NEAR(O.Affinity[0][1], 0.4, 1e-9);
  EXPECT_NEAR(O.Affinity[1][0], 0.4, 1e-9);
  EXPECT_NEAR(O.Affinity[0][0], 1.0, 1e-9);
}

TEST_F(AnalyzerTest, AffinityOneWhenAlwaysTogether) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 30, 64, 0x10000);
  addStream(Prof, "arr", 2, 0, 10, 64, 0x10008);
  addStream(Prof, "arr", 3, 1, 20, 64, 0x10000 + 128);
  addStream(Prof, "arr", 4, 1, 5, 64, 0x10008 + 128);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_NEAR(R.Objects[0].Affinity[0][1], 1.0, 1e-9);
}

TEST_F(AnalyzerTest, AffinityZeroWhenDisjoint) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 30, 64, 0x10000);
  addStream(Prof, "arr", 2, 1, 10, 64, 0x10008);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_EQ(R.Objects[0].Affinity[0][1], 0.0);
  // Two singleton clusters -> split recommended.
  EXPECT_EQ(R.Objects[0].Clusters.size(), 2u);
  EXPECT_TRUE(R.Objects[0].splitRecommended());
}

TEST_F(AnalyzerTest, ClusteringRespectsThreshold) {
  // A-B affinity 0.4: below the default 0.5 threshold -> separate;
  // with threshold 0.3 -> together.
  auto BuildProfile = [&] {
    Profile Prof;
    addStream(Prof, "arr", 1, 0, 30, 64, 0x10000);
    addStream(Prof, "arr", 2, 0, 10, 64, 0x10008);
    addStream(Prof, "arr", 3, 1, 60, 64, 0x10000 + 128);
    return Prof;
  };
  {
    StructSlimAnalyzer Analyzer(*Map);
    AnalysisResult R = Analyzer.analyze(BuildProfile());
    EXPECT_EQ(R.Objects[0].Clusters.size(), 2u);
  }
  {
    AnalysisConfig Cfg;
    Cfg.AffinityThreshold = 0.3;
    StructSlimAnalyzer Analyzer(*Map, Cfg);
    AnalysisResult R = Analyzer.analyze(BuildProfile());
    EXPECT_EQ(R.Objects[0].Clusters.size(), 1u);
    EXPECT_FALSE(R.Objects[0].splitRecommended());
  }
}

TEST_F(AnalyzerTest, ClustersOrderedByHeat) {
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 10, 64, 0x10000);  // Cool field A.
  addStream(Prof, "arr", 2, 1, 500, 64, 0x10008); // Hot field B.
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  const ObjectAnalysis &O = R.Objects[0];
  ASSERT_EQ(O.Clusters.size(), 2u);
  // The hot field's cluster comes first.
  EXPECT_EQ(O.Fields[O.Clusters[0][0]].Offset, 8u);
}

TEST_F(AnalyzerTest, LoopsSortedByLatencyWithNames) {
  Profile Prof;
  // Use real loop ids from the CodeMap (two loops at lines 100-101 and
  // 200-201).
  ASSERT_EQ(Map->loops().size(), 2u);
  addStream(Prof, "arr", 1, 0, 10, 64, 0x10000);
  addStream(Prof, "arr", 2, 1, 90, 64, 0x10008);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  const ObjectAnalysis &O = R.Objects[0];
  ASSERT_EQ(O.Loops.size(), 2u);
  EXPECT_GT(O.Loops[0].LatencySum, O.Loops[1].LatencySum);
  EXPECT_NEAR(O.Loops[0].LatencyShare, 0.9, 1e-9);
  EXPECT_EQ(O.Loops[0].LoopName, Map->getLoop(1).name());
  ASSERT_EQ(O.Loops[0].Offsets.size(), 1u);
  EXPECT_EQ(O.Loops[0].Offsets[0], 8u);
}

TEST_F(AnalyzerTest, SizeConfidenceFollowsEq4) {
  // A stream with 12 unique addresses: the Eq. 4 bound says > 99.9%.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 64, 0x10000, /*UniqueAddrs=*/12);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_GT(R.Objects[0].SizeConfidence, 0.999);
  EXPECT_FALSE(R.Objects[0].LowConfidenceSize);

  // With only 2 unique addresses the confidence is weak (~0.54); a
  // config that admits such sparse streams gets the size flagged
  // low-confidence instead of silently exact.
  AnalysisConfig Sparse;
  Sparse.MinUniqueAddrs = 2;
  StructSlimAnalyzer SparseAnalyzer(*Map, Sparse);
  Profile SparseProf;
  addStream(SparseProf, "arr", 1, 0, 100, 64, 0x10000, /*UniqueAddrs=*/2);
  AnalysisResult R2 = SparseAnalyzer.analyze(SparseProf);
  EXPECT_EQ(R2.Objects[0].StructSize, 64u);
  EXPECT_LT(R2.Objects[0].SizeConfidence, 0.6);
  EXPECT_GT(R2.Objects[0].SizeConfidence, 0.0);
  EXPECT_TRUE(R2.Objects[0].LowConfidenceSize);
  EXPECT_EQ(R2.Stats.LowConfidenceSizes, 1u);

  // No strided stream: no size, no confidence, nothing to flag.
  Profile Unit;
  addStream(Unit, "arr", 1, 0, 100, 8, 0x10000);
  AnalysisResult R3 = Analyzer.analyze(Unit);
  EXPECT_EQ(R3.Objects[0].SizeConfidence, 0.0);
  EXPECT_FALSE(R3.Objects[0].LowConfidenceSize);
}

TEST_F(AnalyzerTest, DefaultMinUniqueAddrsMatchesPaperBar) {
  // The default config follows the paper's Eq. 4 working threshold: 10
  // unique addresses for > 99% stride accuracy. A 9-unique stream must
  // not contribute to size inference by default.
  AnalysisConfig Cfg;
  EXPECT_EQ(Cfg.MinUniqueAddrs, 10u);

  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 96, 0x10000, /*UniqueAddrs=*/9);
  addStream(Prof, "arr", 2, 0, 100, 64, 0x10008, /*UniqueAddrs=*/10);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  // Only the 10-unique stream participates: size 64, not gcd(96,64)=32.
  EXPECT_EQ(R.Objects[0].StructSize, 64u);
}

TEST_F(AnalyzerTest, HierarchicalClusteringBreaksChains) {
  // Chain: A-B affine via loop 0, B-C affine via loop 1, A-C never
  // together. Threshold clustering (the paper's) fuses all three;
  // average linkage keeps A and C apart.
  auto BuildProfile = [&] {
    Profile Prof;
    addStream(Prof, "arr", 1, 0, 50, 64, 0x10000);      // A in loop 0.
    addStream(Prof, "arr", 2, 0, 50, 64, 0x10008);      // B in loop 0.
    addStream(Prof, "arr", 3, 1, 50, 64, 0x10008 + 64); // B in loop 1.
    addStream(Prof, "arr", 4, 1, 50, 64, 0x10010);      // C in loop 1.
    return Prof;
  };
  {
    StructSlimAnalyzer Analyzer(*Map); // Threshold default.
    AnalysisResult R = Analyzer.analyze(BuildProfile());
    EXPECT_EQ(R.Objects[0].Clusters.size(), 1u);
  }
  {
    AnalysisConfig Cfg;
    Cfg.Clustering = ClusteringMethod::Hierarchical;
    StructSlimAnalyzer Analyzer(*Map, Cfg);
    AnalysisResult R = Analyzer.analyze(BuildProfile());
    // {A,B} (or {B,C}) merges first; the third field stays out because
    // its average affinity to the pair is diluted by the zero edge.
    EXPECT_EQ(R.Objects[0].Clusters.size(), 2u);
  }
}

TEST_F(AnalyzerTest, HierarchicalMatchesThresholdOnCleanStructure) {
  // Two perfectly-affine pairs, no cross edges: both methods agree.
  auto BuildProfile = [&] {
    Profile Prof;
    addStream(Prof, "arr", 1, 0, 50, 64, 0x10000);
    addStream(Prof, "arr", 2, 0, 50, 64, 0x10008);
    addStream(Prof, "arr", 3, 1, 70, 64, 0x10010);
    addStream(Prof, "arr", 4, 1, 70, 64, 0x10018);
    return Prof;
  };
  for (auto Method : {ClusteringMethod::Threshold,
                      ClusteringMethod::Hierarchical}) {
    AnalysisConfig Cfg;
    Cfg.Clustering = Method;
    StructSlimAnalyzer Analyzer(*Map, Cfg);
    AnalysisResult R = Analyzer.analyze(BuildProfile());
    ASSERT_EQ(R.Objects[0].Clusters.size(), 2u);
    EXPECT_EQ(R.Objects[0].Clusters[0].size(), 2u);
    EXPECT_EQ(R.Objects[0].Clusters[1].size(), 2u);
  }
}

TEST_F(AnalyzerTest, FieldLevelSamplesAggregate) {
  Profile Prof;
  StreamRecord &S1 = addStream(Prof, "arr", 1, 0, 100, 64, 0x10000);
  S1.LevelSamples = {5, 3, 2, 1};
  StreamRecord &S2 = addStream(Prof, "arr", 2, 1, 50, 64, 0x10000 + 128);
  S2.LevelSamples = {1, 0, 0, 4}; // Same field (offset 0), other loop.
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects[0].Fields.size(), 1u);
  const FieldStat &F = R.Objects[0].Fields[0];
  EXPECT_EQ(F.LevelSamples[0], 6u);
  EXPECT_EQ(F.LevelSamples[1], 3u);
  EXPECT_EQ(F.LevelSamples[3], 5u);
}

TEST_F(AnalyzerTest, EmptyProfile) {
  Profile Prof;
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  EXPECT_TRUE(R.Objects.empty());
  EXPECT_EQ(R.TotalLatency, 0u);
}

TEST_F(AnalyzerTest, RepAddrBeforeObjectStartIsSkippedNotGarbage) {
  // Regression: a merged stream whose representative address precedes
  // its object base used to underflow the unsigned Eq. 6 modulo into a
  // garbage field offset. Such streams are skipped and counted.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 64, 0x10000);     // Valid, offset 0.
  addStream(Prof, "arr", 2, 0, 100, 64, 0x10008);     // Valid, offset 8.
  // Inconsistent: RepAddr 0x8000 < ObjectStart 0x10000.
  addStream(Prof, "arr", 3, 1, 50, 64, /*RepAddr=*/0x8000);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  const ObjectAnalysis &O = R.Objects[0];
  // Only the two valid offsets appear — no garbage field near 2^32.
  ASSERT_EQ(O.Fields.size(), 2u);
  EXPECT_EQ(O.Fields[0].Offset, 0u);
  EXPECT_EQ(O.Fields[1].Offset, 8u);
  // The skipped stream contributes to no loop either.
  ASSERT_EQ(O.Loops.size(), 1u);
  EXPECT_EQ(O.Loops[0].LoopId, 0);
  // It is counted, per object and in the aggregate stats.
  EXPECT_EQ(O.SkippedStreams, 1u);
  EXPECT_EQ(R.Stats.SkippedInconsistentStreams, 1u);
}

TEST_F(AnalyzerTest, StatsCountersPopulated) {
  Profile Prof;
  addStream(Prof, "hot", 1, 0, 800, 64, 0x10000);
  addStream(Prof, "hot", 2, 1, 150, 64, 0x10008);
  addStream(Prof, "tiny", 3, 0, 5, 64, 0x10000); // < 1% share: filtered.
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  EXPECT_EQ(R.Stats.ObjectsConsidered, 2u);
  EXPECT_EQ(R.Stats.ObjectsAnalyzed, 1u);
  EXPECT_EQ(R.Stats.StreamsAnalyzed, 2u);
  EXPECT_EQ(R.Stats.SkippedInconsistentStreams, 0u);
  EXPECT_EQ(R.Stats.LowConfidenceSizes, 0u);
}

TEST_F(AnalyzerTest, SingleFieldObjectIsOneCluster) {
  // 1-field edge case: both clustering methods yield one singleton
  // cluster and no split recommendation.
  for (auto Method :
       {ClusteringMethod::Threshold, ClusteringMethod::Hierarchical}) {
    Profile Prof;
    addStream(Prof, "arr", 1, 0, 100, 64, 0x10000);
    AnalysisConfig Cfg;
    Cfg.Clustering = Method;
    StructSlimAnalyzer Analyzer(*Map, Cfg);
    AnalysisResult R = Analyzer.analyze(Prof);
    ASSERT_EQ(R.Objects[0].Fields.size(), 1u);
    ASSERT_EQ(R.Objects[0].Clusters.size(), 1u);
    EXPECT_EQ(R.Objects[0].Clusters[0],
              (std::vector<uint32_t>{0}));
    EXPECT_FALSE(R.Objects[0].splitRecommended());
  }
}

TEST_F(AnalyzerTest, ZeroFieldObjectHasNoClusters) {
  // 0-field edge case: an object can carry latency with every stream
  // skipped as inconsistent — fields, affinity and clusters all stay
  // empty and no split is recommended.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 64, /*RepAddr=*/0x8000); // Underflow.
  for (auto Method :
       {ClusteringMethod::Threshold, ClusteringMethod::Hierarchical}) {
    AnalysisConfig Cfg;
    Cfg.Clustering = Method;
    StructSlimAnalyzer Analyzer(*Map, Cfg);
    AnalysisResult R = Analyzer.analyze(Prof);
    ASSERT_EQ(R.Objects.size(), 1u);
    EXPECT_TRUE(R.Objects[0].Fields.empty());
    EXPECT_TRUE(R.Objects[0].Affinity.empty());
    EXPECT_TRUE(R.Objects[0].Clusters.empty());
    EXPECT_FALSE(R.Objects[0].splitRecommended());
    EXPECT_EQ(R.Objects[0].SkippedStreams, 1u);
  }
}

TEST_F(AnalyzerTest, AllZeroAffinitySplitsEveryField) {
  // Three fields, each alone in its own loop: the affinity matrix is
  // the identity, and both methods emit three singleton clusters.
  for (auto Method :
       {ClusteringMethod::Threshold, ClusteringMethod::Hierarchical}) {
    Profile Prof;
    addStream(Prof, "arr", 1, 0, 100, 64, 0x10000);
    addStream(Prof, "arr", 2, 1, 90, 64, 0x10008);
    addStream(Prof, "arr", 3, 7, 80, 64, 0x10010);
    AnalysisConfig Cfg;
    Cfg.Clustering = Method;
    StructSlimAnalyzer Analyzer(*Map, Cfg);
    AnalysisResult R = Analyzer.analyze(Prof);
    const ObjectAnalysis &O = R.Objects[0];
    ASSERT_EQ(O.Fields.size(), 3u);
    for (size_t I = 0; I != 3; ++I)
      for (size_t J = 0; J != 3; ++J)
        EXPECT_EQ(O.Affinity[I][J], I == J ? 1.0 : 0.0);
    EXPECT_EQ(O.Clusters.size(), 3u);
    EXPECT_TRUE(O.splitRecommended());
  }
}

// --- Bounded-sampling confidence accounting (reservoir bugfix sweep) ---

TEST_F(AnalyzerTest, SparseStridedStreamDiscountsSizeConfidence) {
  // Baseline: one trustworthy strided stream, nothing sparse.
  Profile Base;
  addStream(Base, "arr", 1, 0, 100, 128, 0x10000, /*UniqueAddrs=*/16);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult RBase = Analyzer.analyze(Base);
  ASSERT_EQ(RBase.Objects.size(), 1u);
  double BaseConf = RBase.Objects[0].SizeConfidence;
  ASSERT_GT(BaseConf, 0.99);

  // Same stream plus a sparse strided stream (4 < MinUniqueAddrs):
  // excluded from the Eq. 5 GCD, but its unheard stride evidence must
  // discount the object's confidence multiplicatively — the old
  // behavior (confidence as if the stream never existed) over-trusted
  // sparse objects.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 128, 0x10000, /*UniqueAddrs=*/16);
  addStream(Prof, "arr", 2, 0, 100, 192, 0x10008, /*UniqueAddrs=*/4);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  const ObjectAnalysis &O = R.Objects[0];
  EXPECT_EQ(O.StructSize, 128u); // Sparse stream stays out of the GCD.
  EXPECT_EQ(O.SparseStreams, 1u);
  EXPECT_LT(O.SizeConfidence, BaseConf);
  EXPECT_GT(O.SizeConfidence, 0.0);
  EXPECT_TRUE(O.LowConfidenceSize);
  EXPECT_EQ(R.Stats.SparseStreams, 1u);
  // No reservoir in play: sparse, but not truncated.
  EXPECT_EQ(O.TruncatedStreams, 0u);
  EXPECT_FALSE(O.ReservoirTruncated);
  EXPECT_EQ(R.Stats.TruncatedStreams, 0u);
  EXPECT_EQ(R.Stats.ReservoirTruncatedObjects, 0u);
}

TEST_F(AnalyzerTest, SparseUnitStrideStreamDoesNotDiscount) {
  // A sparse stream with no stride evidence (unit stride) could never
  // have contradicted the inferred size; it must not cost confidence.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 128, 0x10000, /*UniqueAddrs=*/16);
  addStream(Prof, "arr", 2, 0, 100, 8, 0x10008, /*UniqueAddrs=*/4,
            /*AccessSize=*/8);
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  EXPECT_EQ(R.Objects[0].SparseStreams, 0u);
  EXPECT_GT(R.Objects[0].SizeConfidence, 0.99);
  EXPECT_FALSE(R.Objects[0].LowConfidenceSize);
}

TEST_F(AnalyzerTest, OfferedSamplesAboveKeptMarksStreamTruncated) {
  // A stream the reservoir demonstrably starved (more samples offered
  // than survived) is flagged even without profile-level loss counters.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 128, 0x10000, /*UniqueAddrs=*/16);
  StreamRecord &Sparse =
      addStream(Prof, "arr", 2, 0, 100, 192, 0x10008, /*UniqueAddrs=*/4);
  Sparse.OfferedSamples = Sparse.SampleCount + 50;
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  const ObjectAnalysis &O = R.Objects[0];
  EXPECT_EQ(O.TruncatedStreams, 1u);
  EXPECT_TRUE(O.ReservoirTruncated);
  EXPECT_TRUE(O.LowConfidenceSize);
  EXPECT_EQ(R.Stats.TruncatedStreams, 1u);
  EXPECT_EQ(R.Stats.ReservoirTruncatedObjects, 1u);
}

TEST_F(AnalyzerTest, LossyProfileFlagsEverySparseStreamConservatively) {
  // A profile that recorded reservoir evictions cannot distinguish
  // "naturally sparse" from "truncated": every sparse stream is
  // suspect, and the object's size is flagged low-confidence even
  // when the surviving evidence would otherwise clear the 99% bar.
  Profile Prof;
  addStream(Prof, "arr", 1, 0, 100, 128, 0x10000, /*UniqueAddrs=*/16);
  addStream(Prof, "arr", 2, 0, 100, 192, 0x10008, /*UniqueAddrs=*/4);
  Prof.ReservoirCapacity = 64;
  Prof.ReservoirEvictions = 10;
  StructSlimAnalyzer Analyzer(*Map);
  AnalysisResult R = Analyzer.analyze(Prof);
  ASSERT_EQ(R.Objects.size(), 1u);
  const ObjectAnalysis &O = R.Objects[0];
  EXPECT_EQ(O.TruncatedStreams, 1u);
  EXPECT_TRUE(O.ReservoirTruncated);
  EXPECT_TRUE(O.LowConfidenceSize);

  // The identical streams under an eviction-free bounded run keep
  // their truncation-free reading: capacity alone is not loss.
  Profile Clean;
  addStream(Clean, "arr", 1, 0, 100, 128, 0x10000, /*UniqueAddrs=*/16);
  addStream(Clean, "arr", 2, 0, 100, 192, 0x10008, /*UniqueAddrs=*/4);
  Clean.ReservoirCapacity = 64;
  AnalysisResult RClean = Analyzer.analyze(Clean);
  ASSERT_EQ(RClean.Objects.size(), 1u);
  EXPECT_EQ(RClean.Objects[0].TruncatedStreams, 0u);
  EXPECT_FALSE(RClean.Objects[0].ReservoirTruncated);
}
