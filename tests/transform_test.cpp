//===- tests/transform_test.cpp - FieldMap & StructSplitter ----*- C++ -*-===//

#include "ir/ProgramBuilder.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "transform/FieldMap.h"
#include "transform/StructSplitter.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::transform;
using structslim::ir::NoReg;
using structslim::ir::Reg;

namespace {

ir::StructLayout abcd() {
  ir::StructLayout L("s");
  L.addField("a", 8);
  L.addField("b", 8);
  L.addField("c", 8);
  L.addField("d", 8);
  L.finalize();
  return L;
}

core::SplitPlan acBdPlan() {
  core::SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 32;
  Plan.ClusterOffsets = {{0, 16}, {8, 24}};
  return Plan;
}

} // namespace

// --- FieldMap ---------------------------------------------------------------

TEST(FieldMap, IdentityKeepsOriginalOffsets) {
  ir::StructLayout L = abcd();
  FieldMap Map(L);
  EXPECT_EQ(Map.getNumGroups(), 1u);
  EXPECT_EQ(Map.getGroupSize(0), 32u);
  FieldLoc C = Map.locate("c");
  EXPECT_EQ(C.Group, 0u);
  EXPECT_EQ(C.Offset, 16u);
  EXPECT_EQ(C.Size, 8u);
  EXPECT_EQ(Map.getBytesPerElement(), 32u);
}

TEST(FieldMap, SplitRepacksDensely) {
  ir::StructLayout L = abcd();
  FieldMap Map(L, acBdPlan());
  EXPECT_EQ(Map.getNumGroups(), 2u);
  EXPECT_EQ(Map.getGroupSize(0), 16u);
  EXPECT_EQ(Map.getGroupSize(1), 16u);
  FieldLoc A = Map.locate("a");
  FieldLoc C = Map.locate("c");
  FieldLoc B = Map.locate("b");
  EXPECT_EQ(A.Group, 0u);
  EXPECT_EQ(A.Offset, 0u);
  EXPECT_EQ(C.Group, 0u);
  EXPECT_EQ(C.Offset, 8u); // Re-packed: c moves from 16 to 8.
  EXPECT_EQ(B.Group, 1u);
  EXPECT_EQ(B.Offset, 0u);
  EXPECT_EQ(Map.groupSuffix(0), "");
  EXPECT_EQ(Map.groupSuffix(1), "_1");
}

TEST(FieldMap, GroupLayoutNamesFollowObject) {
  ir::StructLayout L = abcd();
  FieldMap Map(L, acBdPlan());
  EXPECT_EQ(Map.getGroupLayout(0).getName(), "s_0");
  EXPECT_EQ(Map.getGroupLayout(1).getName(), "s_1");
}

TEST(FieldMapDeath, UnknownFieldAborts) {
  ir::StructLayout L = abcd();
  FieldMap Map(L);
  EXPECT_DEATH(Map.locate("nope"), "unknown field");
}

TEST(FieldMapDeath, PlanDroppingFieldAborts) {
  ir::StructLayout L = abcd();
  core::SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 32;
  Plan.ClusterOffsets = {{0, 16}}; // b and d homeless.
  EXPECT_DEATH(FieldMap(L, Plan), "drops field");
}

// --- StructSplitter ------------------------------------------------------------

namespace {

/// The Fig. 1 program: init all fields, sum a+c in one loop, b+d in
/// another; returns the grand total. Token-annotated for the splitter.
struct TokenProgram {
  std::unique_ptr<ir::Program> P;
  uint32_t Token;
};

TokenProgram buildTokenProgram(int64_t N, bool FreeAtEnd = false) {
  TokenProgram T;
  T.P = std::make_unique<ir::Program>();
  T.Token = T.P->makeToken("s");
  ir::Function &F = T.P->addFunction("main", 0);
  ir::ProgramBuilder B(*T.P, F);
  Reg Bytes = B.constI(N * 32);
  Reg Base = B.alloc(Bytes, "s", T.Token);
  B.forLoopI(0, N, 1, [&](Reg I) {
    B.store(I, Base, I, 32, 0, 8, T.Token);
    Reg I2 = B.mulI(I, 2);
    B.store(I2, Base, I, 32, 8, 8, T.Token);
    Reg I3 = B.mulI(I, 3);
    B.store(I3, Base, I, 32, 16, 8, T.Token);
    Reg I4 = B.mulI(I, 4);
    B.store(I4, Base, I, 32, 24, 8, T.Token);
  });
  Reg Acc = B.constI(0);
  B.forLoopI(0, N, 1, [&](Reg I) {
    Reg A = B.load(Base, I, 32, 0, 8, T.Token);
    Reg C = B.load(Base, I, 32, 16, 8, T.Token);
    B.accumulate(Acc, B.add(A, C));
  });
  B.forLoopI(0, N, 1, [&](Reg I) {
    Reg Bv = B.load(Base, I, 32, 8, 8, T.Token);
    Reg D = B.load(Base, I, 32, 24, 8, T.Token);
    B.accumulate(Acc, B.add(Bv, D));
  });
  if (FreeAtEnd)
    B.free(Base);
  B.ret(Acc);
  return T;
}

uint64_t runProgram(const ir::Program &P) {
  EXPECT_EQ(ir::verify(P), "");
  runtime::Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  runtime::Interpreter I(P, M, H, nullptr, 0);
  return I.run(P.getEntry(), {});
}

} // namespace

TEST(CloneProgram, PreservesEverything) {
  TokenProgram T = buildTokenProgram(10);
  auto Clone = cloneProgram(*T.P);
  EXPECT_EQ(Clone->toString(), T.P->toString());
  EXPECT_EQ(Clone->getIpEnd(), T.P->getIpEnd());
  EXPECT_EQ(runProgram(*Clone), runProgram(*T.P));
}

TEST(StructSplitter, PreservesSemantics) {
  TokenProgram T = buildTokenProgram(100);
  ir::StructLayout L = abcd();
  std::string Error;
  auto Split = splitArrayOfStructs(*T.P, T.Token, L, acBdPlan(), &Error);
  ASSERT_NE(Split, nullptr) << Error;
  EXPECT_EQ(ir::verify(*Split), "");
  EXPECT_EQ(runProgram(*Split), runProgram(*T.P));
}

TEST(StructSplitter, FissionsAllocation) {
  TokenProgram T = buildTokenProgram(50);
  ir::StructLayout L = abcd();
  std::string Error;
  auto Split = splitArrayOfStructs(*T.P, T.Token, L, acBdPlan(), &Error);
  ASSERT_NE(Split, nullptr) << Error;
  // Two allocations now exist: "s" and "s_1".
  runtime::Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  runtime::Interpreter I(*Split, M, H, nullptr, 0);
  I.run(Split->getEntry(), {});
  bool SawBase = false, SawSecond = false;
  for (const mem::DataObject &O : M.Objects.all()) {
    SawBase |= O.Name == "s" && O.Size == 50 * 16;
    SawSecond |= O.Name == "s_1" && O.Size == 50 * 16;
  }
  EXPECT_TRUE(SawBase);
  EXPECT_TRUE(SawSecond);
}

TEST(StructSplitter, RewritesScaleAndDisp) {
  TokenProgram T = buildTokenProgram(10);
  ir::StructLayout L = abcd();
  std::string Error;
  auto Split = splitArrayOfStructs(*T.P, T.Token, L, acBdPlan(), &Error);
  ASSERT_NE(Split, nullptr) << Error;
  // Every annotated memory op now has scale 16 and disp in {0, 8}.
  for (const auto &F : Split->functions())
    for (const auto &BB : F->Blocks)
      for (const ir::Instr &I : BB->Instrs) {
        if (!ir::isMemoryOp(I.Op) || I.Token != T.Token)
          continue;
        EXPECT_EQ(I.Scale, 16u);
        EXPECT_TRUE(I.Disp == 0 || I.Disp == 8) << "disp " << I.Disp;
      }
}

TEST(StructSplitter, FreesEveryGroup) {
  TokenProgram T = buildTokenProgram(20, /*FreeAtEnd=*/true);
  ir::StructLayout L = abcd();
  std::string Error;
  auto Split = splitArrayOfStructs(*T.P, T.Token, L, acBdPlan(), &Error);
  ASSERT_NE(Split, nullptr) << Error;
  runtime::Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  runtime::Interpreter I(*Split, M, H, nullptr, 0);
  I.run(Split->getEntry(), {});
  EXPECT_EQ(M.Allocator.getBytesLive(), 0u);
}

TEST(StructSplitter, ThreeWaySplitSemantics) {
  TokenProgram T = buildTokenProgram(64);
  ir::StructLayout L = abcd();
  core::SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 32;
  Plan.ClusterOffsets = {{0}, {8, 16}, {24}};
  std::string Error;
  auto Split = splitArrayOfStructs(*T.P, T.Token, L, Plan, &Error);
  ASSERT_NE(Split, nullptr) << Error;
  EXPECT_EQ(runProgram(*Split), runProgram(*T.P));
}

TEST(StructSplitter, RejectsNonSplitPlan) {
  TokenProgram T = buildTokenProgram(10);
  ir::StructLayout L = abcd();
  core::SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 32;
  Plan.ClusterOffsets = {{0, 8, 16, 24}};
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(*T.P, T.Token, L, Plan, &Error), nullptr);
  EXPECT_NE(Error.find("nothing to do"), std::string::npos);
}

TEST(StructSplitter, RejectsForeignBaseRegister) {
  // An annotated access whose base was loaded from memory (the worker
  // side of a published pointer): no annotated allocation defines it
  // in this function, so the rewriter has no group bases to retarget
  // the access to.
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Mailbox = B.constI(0x1000);
  Reg Base = B.load(Mailbox, NoReg, 1, 0, 8);
  Reg Zero = B.constI(0);
  B.load(Base, Zero, 32, 0, 8, Token);
  B.ret();
  std::string Before = P.toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("base register is not a token-annotated allocation"),
            std::string::npos)
      << Error;
  EXPECT_EQ(P.toString(), Before); // Input program untouched.
}

TEST(StructSplitter, RejectsCopiedBasePointer) {
  // Copying the allocation's base register defeats the rewriter: the
  // copy would still point at the old interleaved layout.
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(320);
  Reg Base = B.alloc(Bytes, "s", Token);
  B.move(Base);
  B.ret();
  std::string Before = P.toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("escapes"), std::string::npos) << Error;
  EXPECT_EQ(P.toString(), Before);
}

TEST(StructSplitter, RejectsPublishedBasePointer) {
  // Storing the base pointer as a *value* (the mailbox publication the
  // parallel workloads perform) shares it with code the rewriter
  // cannot see; must reject, not silently rewrite one side.
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(320);
  Reg Base = B.alloc(Bytes, "s", Token);
  Reg Mailbox = B.constI(0x1000);
  B.store(Base, Mailbox, NoReg, 1, 0, 8); // Publish: base as value.
  B.ret();
  std::string Before = P.toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("escapes (stored or used as a value)"),
            std::string::npos)
      << Error;
  EXPECT_EQ(P.toString(), Before);
}

TEST(StructSplitter, RejectsBasePassedToCall) {
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &Callee = P.addFunction("use", 1);
  {
    ir::ProgramBuilder CB(P, Callee);
    CB.ret();
  }
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(320);
  Reg Base = B.alloc(Bytes, "s", Token);
  B.call(Callee, {Base});
  B.ret();
  P.setEntry(F.Id);
  std::string Before = P.toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("escapes into a call"), std::string::npos) << Error;
  EXPECT_EQ(P.toString(), Before);
}

TEST(StructSplitter, RejectsUnannotatedAccessThroughBase) {
  // A plain load through the annotated allocation's base would keep
  // the original 32-byte stride after fission and read garbage.
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(320);
  Reg Base = B.alloc(Bytes, "s", Token);
  Reg Zero = B.constI(0);
  B.load(Base, Zero, 32, 0, 8); // No token.
  B.ret();
  std::string Before = P.toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("unannotated access"), std::string::npos) << Error;
  EXPECT_EQ(P.toString(), Before);
}

TEST(StructSplitter, RejectsOutOfBoundsDisplacement) {
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(320);
  Reg Base = B.alloc(Bytes, "s", Token);
  Reg Zero = B.constI(0);
  B.load(Base, Zero, 32, 40, 8, Token); // 40 >= sizeof(s) == 32.
  B.ret();
  std::string Before = P.toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("displacement outside the structure"),
            std::string::npos)
      << Error;
  EXPECT_EQ(P.toString(), Before);
}

TEST(StructSplitter, RejectsZeroSizeLayout) {
  TokenProgram T = buildTokenProgram(10);
  ir::StructLayout Empty("s");
  Empty.finalize();
  std::string Before = T.P->toString();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(*T.P, T.Token, Empty, acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("zero size"), std::string::npos) << Error;
  EXPECT_EQ(T.P->toString(), Before);
}

TEST(StructSplitter, RejectsMisalignedScale) {
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(320);
  Reg Base = B.alloc(Bytes, "s", Token);
  Reg Zero = B.constI(0);
  B.load(Base, Zero, 24, 0, 8, Token); // 24 is not a multiple of 32.
  B.ret();
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, abcd(), acBdPlan(), &Error),
            nullptr);
  EXPECT_NE(Error.find("multiple of the structure size"),
            std::string::npos);
}

TEST(StructSplitter, RejectsPaddingAccess) {
  ir::StructLayout L("s");
  L.addField("c", 1);
  L.addField("d", 8);
  L.finalize(); // Padding at 1..7.
  ir::Program P;
  uint32_t Token = P.makeToken("s");
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  Reg Bytes = B.constI(160);
  Reg Base = B.alloc(Bytes, "s", Token);
  Reg Zero = B.constI(0);
  B.load(Base, Zero, 16, 4, 1, Token); // Hits padding.
  B.ret();
  core::SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 16;
  Plan.ClusterOffsets = {{0}, {8}};
  std::string Error;
  EXPECT_EQ(splitArrayOfStructs(P, Token, L, Plan, &Error), nullptr);
  EXPECT_NE(Error.find("padding"), std::string::npos);
}

TEST(StructSplitter, UnannotatedCodeUntouched) {
  TokenProgram T = buildTokenProgram(10);
  // Add a second, unannotated array in the same function.
  ir::Function &F = *T.P->functions()[0];
  (void)F;
  ir::StructLayout L = abcd();
  std::string Error;
  auto Split = splitArrayOfStructs(*T.P, T.Token, L, acBdPlan(), &Error);
  ASSERT_NE(Split, nullptr) << Error;
  // Function and token tables intact.
  EXPECT_EQ(Split->getNumFunctions(), T.P->getNumFunctions());
  EXPECT_EQ(Split->getNumTokens(), T.P->getNumTokens());
}
