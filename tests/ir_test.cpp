//===- tests/ir_test.cpp - Program / builder / verifier tests --*- C++ -*-===//

#include "ir/Program.h"
#include "ir/ProgramBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::ir;

namespace {

/// A trivially valid function: `ret 0`.
Function &makeRetZero(Program &P, const std::string &Name = "f") {
  Function &F = P.addFunction(Name, 0);
  ProgramBuilder B(P, F);
  Reg Z = B.constI(0);
  B.ret(Z);
  return F;
}

} // namespace

TEST(Program, IpsAreUniqueAndDense) {
  Program P;
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg A = B.constI(1);
  Reg C = B.addI(A, 2);
  B.ret(C);
  const auto &Instrs = F.entry().Instrs;
  ASSERT_EQ(Instrs.size(), 3u);
  EXPECT_EQ(Instrs[0].Ip, Program::TextBase);
  EXPECT_EQ(Instrs[1].Ip, Program::TextBase + 1);
  EXPECT_EQ(Instrs[2].Ip, Program::TextBase + 2);
  EXPECT_EQ(P.getIpEnd(), Program::TextBase + 3);
}

TEST(Program, Tokens) {
  Program P;
  uint32_t T1 = P.makeToken("Arr");
  uint32_t T2 = P.makeToken("Brr");
  EXPECT_EQ(T1, 1u);
  EXPECT_EQ(T2, 2u);
  EXPECT_EQ(P.getTokenName(T1), "Arr");
  EXPECT_EQ(P.getTokenName(0), "<none>");
  EXPECT_EQ(P.getNumTokens(), 3u);
}

TEST(Program, FindFunction) {
  Program P;
  makeRetZero(P, "alpha");
  makeRetZero(P, "beta");
  ASSERT_NE(P.findFunction("beta"), nullptr);
  EXPECT_EQ(P.findFunction("beta")->Id, 1u);
  EXPECT_EQ(P.findFunction("gamma"), nullptr);
}

TEST(Program, CountInstructions) {
  Program P;
  makeRetZero(P);
  EXPECT_EQ(P.countInstructions(), 2u);
}

TEST(Program, ReserveIps) {
  Program P;
  P.reserveIps(Program::TextBase + 100);
  EXPECT_EQ(P.nextIp(), Program::TextBase + 100);
  P.reserveIps(Program::TextBase); // No going back.
  EXPECT_EQ(P.nextIp(), Program::TextBase + 101);
}

TEST(Builder, LinesAttach) {
  Program P;
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  B.setLine(42);
  Reg A = B.constI(1);
  B.setLine(43);
  B.ret(A);
  EXPECT_EQ(F.entry().Instrs[0].Line, 42u);
  EXPECT_EQ(F.entry().Instrs[1].Line, 43u);
}

TEST(Builder, ForLoopShape) {
  Program P;
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  B.forLoopI(0, 10, 1, [&](Reg) {});
  B.ret();
  // preheader(entry) + header + body + exit = 4 blocks.
  ASSERT_EQ(F.Blocks.size(), 4u);
  // Header has two successors (body, exit); body branches back.
  const BasicBlock &Header = *F.Blocks[1];
  EXPECT_EQ(Header.Succs.size(), 2u);
  const BasicBlock &Body = *F.Blocks[2];
  ASSERT_EQ(Body.Succs.size(), 1u);
  EXPECT_EQ(Body.Succs[0], Header.Id);
  EXPECT_TRUE(verify(P).empty());
}

TEST(Builder, IfThenElseShape) {
  Program P;
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg C = B.constI(1);
  B.ifThenElse(C, [&] {}, [&] {});
  B.ret();
  EXPECT_TRUE(verify(P).empty());
  EXPECT_EQ(F.Blocks.size(), 4u); // entry, then, else, join.
}

TEST(Builder, WhileLoopVerifies) {
  Program P;
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg I = B.constI(0);
  B.whileLoop(
      [&] {
        Reg Ten = B.constI(10);
        return B.cmpLt(I, Ten);
      },
      [&] { B.moveInto(I, B.addI(I, 1)); });
  B.ret(I);
  EXPECT_TRUE(verify(P).empty());
}

TEST(Builder, CallArgumentCheck) {
  Program P;
  Function &Callee = P.addFunction("callee", 2);
  {
    ProgramBuilder B(P, Callee);
    B.ret(B.add(0, 1));
  }
  Function &Main = P.addFunction("main", 0);
  ProgramBuilder B(P, Main);
  Reg A = B.constI(1), C = B.constI(2);
  B.ret(B.call(Callee, {A, C}));
  EXPECT_TRUE(verify(P).empty());
}

TEST(Printer, ContainsMnemonics) {
  Program P;
  uint32_t Tok = P.makeToken("Arr");
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Sz = B.constI(64);
  Reg A = B.alloc(Sz, "Arr", Tok);
  Reg V = B.load(A, NoReg, 1, 8, 8, Tok);
  B.store(V, A, NoReg, 1, 16, 8);
  B.ret(V);
  std::string S = P.toString();
  EXPECT_NE(S.find("func @main"), std::string::npos);
  EXPECT_NE(S.find("alloc"), std::string::npos);
  EXPECT_NE(S.find("\"Arr\""), std::string::npos);
  EXPECT_NE(S.find("!tok:Arr"), std::string::npos);
  EXPECT_NE(S.find("load"), std::string::npos);
}

// --- Verifier diagnostics -------------------------------------------------

TEST(Verifier, EmptyProgram) {
  Program P;
  EXPECT_EQ(verify(P), "program has no functions");
}

TEST(Verifier, EntryOutOfRange) {
  Program P;
  makeRetZero(P);
  P.setEntry(5);
  EXPECT_NE(verify(P).find("entry function id"), std::string::npos);
}

TEST(Verifier, MissingTerminator) {
  Program P;
  Function &F = P.addFunction("f", 0);
  ProgramBuilder B(P, F);
  B.constI(1); // No terminator.
  EXPECT_NE(verify(P).find("terminator"), std::string::npos);
}

TEST(Verifier, EmptyBlock) {
  Program P;
  Function &F = P.addFunction("f", 0);
  ProgramBuilder B(P, F);
  B.ret();
  uint32_t Id = B.newBlock(); // Left empty.
  (void)Id;
  EXPECT_NE(verify(P).find("empty block"), std::string::npos);
}

TEST(Verifier, RegisterOutOfRange) {
  Program P;
  Function &F = P.addFunction("f", 0);
  ProgramBuilder B(P, F);
  Instr I;
  I.Op = Opcode::Move;
  I.Dst = 0;
  I.A = 99; // Never allocated.
  F.entry().Instrs.push_back(I);
  Instr R;
  R.Op = Opcode::Ret;
  F.entry().Instrs.push_back(R);
  F.NumRegs = 1;
  EXPECT_NE(verify(P).find("out of range"), std::string::npos);
}

TEST(Verifier, BadMemorySize) {
  Program P;
  Function &F = P.addFunction("f", 0);
  ProgramBuilder B(P, F);
  Reg A = B.constI(0);
  Instr L;
  L.Op = Opcode::Load;
  L.Dst = B.newReg();
  L.A = A;
  L.Size = 3; // Invalid.
  F.entry().Instrs.push_back(L);
  Instr R;
  R.Op = Opcode::Ret;
  F.entry().Instrs.push_back(R);
  EXPECT_NE(verify(P).find("size must be 1/2/4/8"), std::string::npos);
}

TEST(Verifier, SuccessorMismatch) {
  Program P;
  Function &F = P.addFunction("f", 0);
  ProgramBuilder B(P, F);
  B.ret();
  F.entry().Succs.push_back(0); // Ret must have no successors.
  EXPECT_NE(verify(P).find("successor count"), std::string::npos);
}

TEST(Verifier, AllocNeedsName) {
  Program P;
  Function &F = P.addFunction("f", 0);
  ProgramBuilder B(P, F);
  Reg Sz = B.constI(8);
  B.alloc(Sz, "x");
  F.entry().Instrs.back().Sym.clear();
  B.ret();
  EXPECT_NE(verify(P).find("alloc without"), std::string::npos);
}

TEST(Verifier, CallArgCountMismatch) {
  Program P;
  Function &Callee = P.addFunction("callee", 2);
  {
    ProgramBuilder B(P, Callee);
    B.ret();
  }
  Function &Main = P.addFunction("main", 0);
  ProgramBuilder B(P, Main);
  Reg A = B.constI(1);
  B.call(Callee, {A, A});
  Main.Blocks[0]->Instrs.back().Args.pop_back(); // Now one arg.
  B.ret();
  EXPECT_NE(verify(P).find("argument count mismatch"), std::string::npos);
}

TEST(Verifier, WorkloadsProduceValidIr) {
  // Covered more fully in workloads_test; here just the builder idioms.
  Program P;
  Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg N = B.constI(16);
  Reg Arr = B.alloc(N, "arr");
  B.forLoopI(0, 4, 1, [&](Reg I) {
    Reg V = B.load(Arr, I, 4, 0, 4);
    B.ifThen(B.cmpNe(V, B.constI(0)), [&] { B.work(5); });
  });
  B.free(Arr);
  B.ret();
  EXPECT_EQ(verify(P), "");
}
