//===- tests/pipeline_test.cpp - Decoupled pipeline identity ---*- C++ -*-===//
//
// The decoupled sample pipeline's contract is the same as the parallel
// engine's: bit-identical results. These tests stress the threaded
// producer/consumer pair under TSan against a serial replay oracle,
// then sweep every paper workload under both interpreter cores,
// diffing the decoupled runs against the inline-simulation oracle —
// every counter and every serialized profile byte.
//
//===----------------------------------------------------------------------===//

#include "cache/Hierarchy.h"
#include "profile/MergeTree.h"
#include "profile/ProfileIO.h"
#include "runtime/AccessQueue.h"
#include "runtime/SimPipeline.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Random.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace structslim;
using namespace structslim::runtime;

namespace {

std::string profileText(const profile::Profile &P) {
  std::ostringstream OS;
  profile::writeProfile(P, OS);
  return OS.str();
}

/// Bit-identity check between an inline-simulation run and a decoupled
/// run. Pipeline health counters (QueueDepthMax &c.) are host-timing
/// diagnostics and intentionally excluded, like WallSeconds.
void expectIdenticalRuns(const RunResult &Inline, const RunResult &Decoupled) {
  EXPECT_EQ(Inline.ElapsedCycles, Decoupled.ElapsedCycles);
  EXPECT_EQ(Inline.TotalCycles, Decoupled.TotalCycles);
  EXPECT_EQ(Inline.Instructions, Decoupled.Instructions);
  EXPECT_EQ(Inline.MemoryAccesses, Decoupled.MemoryAccesses);
  EXPECT_EQ(Inline.Samples, Decoupled.Samples);
  for (unsigned Level = 0; Level != 3; ++Level) {
    EXPECT_EQ(Inline.Accesses[Level], Decoupled.Accesses[Level])
        << "level " << Level;
    EXPECT_EQ(Inline.Misses[Level], Decoupled.Misses[Level])
        << "level " << Level;
  }
  EXPECT_EQ(Inline.ReturnValues, Decoupled.ReturnValues);
  ASSERT_EQ(Inline.Profiles.size(), Decoupled.Profiles.size());
  for (size_t I = 0; I != Inline.Profiles.size(); ++I)
    EXPECT_EQ(profileText(Inline.Profiles[I]),
              profileText(Decoupled.Profiles[I]))
        << "profile " << I;
}

//===----------------------------------------------------------------------===//
// Threaded producer/consumer stress (the TSan target).
//===----------------------------------------------------------------------===//

// A deterministic two-thread access stream pushed through a real
// threaded SimPipeline (dedicated consumer thread, small ring so
// backpressure engages), compared against an inline access() replay of
// the same stream on a second set of hierarchies. Counters, per-level
// cache state effects, and deferred cycle totals must all match.
TEST(SimPipelineStress, ThreadedConsumerMatchesInlineReplay) {
  cache::HierarchyConfig HC; // Mode 0: no TLB, no prefetcher.

  auto PipeL3 = std::make_unique<cache::SetAssocCache>(HC.L3);
  cache::MemoryHierarchy P0(HC, PipeL3.get());
  cache::MemoryHierarchy P1(HC, PipeL3.get());
  AccessQueue Q(/*Capacity=*/1024, P0.lineShift(), /*CollapseRuns=*/true);
  std::vector<SimPipeline::Lane> Lanes;
  Lanes.push_back({&P0, nullptr});
  Lanes.push_back({&P1, nullptr});
  SimPipeline Pipe(Q, std::move(Lanes), /*Threaded=*/true);
  Pipe.start();

  auto RefL3 = std::make_unique<cache::SetAssocCache>(HC.L3);
  cache::MemoryHierarchy R0(HC, RefL3.get());
  cache::MemoryHierarchy R1(HC, RefL3.get());
  cache::MemoryHierarchy *Ref[2] = {&R0, &R1};
  uint64_t RefCycles[2] = {0, 0};

  // Alternating bursts per thread: sequential walks (collapse into
  // runs), random jumps (run breaks), occasional straddles (exact
  // records), writes mixed in. Thread 1 works a disjoint region but
  // shares the L3, so consumer-side L3 merge order matters.
  const std::vector<uint64_t> NoPath;
  Rng Gen(0x9151);
  for (int Burst = 0; Burst != 6000; ++Burst) {
    uint8_t Tid = Burst & 1;
    uint64_t Base =
        Gen.nextBelow(1 << 22) * 8 + (Tid ? (1ull << 30) : 1ull << 20);
    unsigned Len = 1 + static_cast<unsigned>(Gen.nextBelow(24));
    for (unsigned I = 0; I != Len; ++I) {
      uint64_t Ea = Base + I * 8;
      uint8_t Size = Gen.nextBelow(20) == 0 ? 16 : 8;
      bool IsWrite = Gen.nextBelow(4) == 0;
      uint64_t Ip = 0x4000 + (Burst & 255);
      Q.noteAccess(Tid, Ip, Ea, Size, IsWrite, false, NoPath);
      RefCycles[Tid] += Ref[Tid]->access(Ea, Size, IsWrite, Ip).Latency;
    }
  }
  Q.close();
  Pipe.finish();

  EXPECT_EQ(Pipe.cyclesFor(0), RefCycles[0]);
  EXPECT_EQ(Pipe.cyclesFor(1), RefCycles[1]);
  cache::MemoryHierarchy *Got[2] = {&P0, &P1};
  for (int T = 0; T != 2; ++T) {
    EXPECT_EQ(Got[T]->l1().getHits(), Ref[T]->l1().getHits()) << "tid " << T;
    EXPECT_EQ(Got[T]->l1().getMisses(), Ref[T]->l1().getMisses())
        << "tid " << T;
    EXPECT_EQ(Got[T]->l2().getHits(), Ref[T]->l2().getHits()) << "tid " << T;
    EXPECT_EQ(Got[T]->l2().getMisses(), Ref[T]->l2().getMisses())
        << "tid " << T;
  }
  EXPECT_EQ(PipeL3->getHits(), RefL3->getHits());
  EXPECT_EQ(PipeL3->getMisses(), RefL3->getMisses());
  EXPECT_GT(Pipe.consumerBatches(), 0u);
  EXPECT_GT(Pipe.queueDepthMax(), 0u);
}

// Same shape with a capacity-floor ring and sync() every burst: the
// producer repeatedly waits for full drains, exercising the
// stall/publish/drain handshake from both sides.
TEST(SimPipelineStress, SyncHeavyStreamStaysIdentical) {
  cache::HierarchyConfig HC;
  auto PipeL3 = std::make_unique<cache::SetAssocCache>(HC.L3);
  cache::MemoryHierarchy P0(HC, PipeL3.get());
  AccessQueue Q(1024, P0.lineShift(), true); // The capacity floor.
  std::vector<SimPipeline::Lane> Lanes;
  Lanes.push_back({&P0, nullptr});
  SimPipeline Pipe(Q, std::move(Lanes), /*Threaded=*/true);
  Pipe.start();

  auto RefL3 = std::make_unique<cache::SetAssocCache>(HC.L3);
  cache::MemoryHierarchy R0(HC, RefL3.get());
  uint64_t RefCycles = 0;

  const std::vector<uint64_t> NoPath;
  Rng Gen(0x77);
  for (int Burst = 0; Burst != 500; ++Burst) {
    unsigned Len = 1 + static_cast<unsigned>(Gen.nextBelow(2048));
    uint64_t Base = Gen.nextBelow(1 << 20) * 64;
    for (unsigned I = 0; I != Len; ++I) {
      uint64_t Ea = Base + I * 8;
      Q.noteAccess(0, 0x4000, Ea, 8, false, false, NoPath);
      RefCycles += R0.access(Ea, 8, false, 0x4000).Latency;
    }
    Q.sync(); // Alloc/Free-style barrier: ring fully drained here.
  }
  Q.close();
  Pipe.finish();

  EXPECT_EQ(Pipe.cyclesFor(0), RefCycles);
  EXPECT_EQ(P0.l1().getHits(), R0.l1().getHits());
  EXPECT_EQ(P0.l1().getMisses(), R0.l1().getMisses());
  EXPECT_EQ(P0.l2().getHits(), R0.l2().getHits());
  EXPECT_EQ(P0.l2().getMisses(), R0.l2().getMisses());
  EXPECT_EQ(PipeL3->getHits(), RefL3->getHits());
  EXPECT_EQ(PipeL3->getMisses(), RefL3->getMisses());
}

//===----------------------------------------------------------------------===//
// Differential sweep: every paper workload, both interpreter cores.
//===----------------------------------------------------------------------===//

workloads::WorkloadRun runWith(const workloads::Workload &W,
                               PipelineKind Pipeline, bool Reference) {
  workloads::DriverConfig Cfg;
  Cfg.Scale = 0.08;
  Cfg.Run.Sampling.Period = 2000;
  // Force the serial phase engine: the pipeline only applies there
  // (the parallel engine has its own deferred-round machinery, covered
  // by parallel_runtime_test).
  Cfg.Run.Engine = EngineKind::Serial;
  Cfg.Run.Pipeline = Pipeline;
  Cfg.Run.ReferenceInterpreter = Reference;
  // A small ring guarantees backpressure engages on every workload.
  Cfg.Run.PipelineCapacity = 1 << 10;
  transform::FieldMap Map(W.hotLayout());
  return workloads::runWorkload(W, Map, Cfg, /*Attach=*/true);
}

TEST(PipelineDifferential, PaperWorkloadsDecoupledMatchesInlineOracle) {
  for (const auto &W : workloads::makePaperWorkloads()) {
    for (bool Reference : {false, true}) {
      SCOPED_TRACE(W->name() +
                   (Reference ? " [reference core]" : " [predecoded core]"));
      workloads::WorkloadRun Oracle =
          runWith(*W, PipelineKind::Inline, Reference);
      workloads::WorkloadRun Decoupled =
          runWith(*W, PipelineKind::Decoupled, Reference);
      expectIdenticalRuns(Oracle.Result, Decoupled.Result);
      EXPECT_EQ(profileText(Oracle.Merged), profileText(Decoupled.Merged));
      // The two runs really took different paths: the oracle simulated
      // inline (no drain batches), the decoupled run drained the ring.
      EXPECT_EQ(Oracle.Result.ConsumerBatches, 0u);
      EXPECT_GT(Decoupled.Result.ConsumerBatches, 0u);
      EXPECT_GT(Oracle.Result.Samples, 0u);
    }
  }
}

// PipelineKind::Auto must resolve to the decoupled pipeline for
// profiled serial phases and stay bit-identical to the inline oracle.
TEST(PipelineDifferential, AutoResolvesToDecoupledAndStaysIdentical) {
  auto W = workloads::makeTsp();
  workloads::WorkloadRun Oracle = runWith(*W, PipelineKind::Inline, false);
  workloads::WorkloadRun Auto = runWith(*W, PipelineKind::Auto, false);
  expectIdenticalRuns(Oracle.Result, Auto.Result);
  EXPECT_EQ(profileText(Oracle.Merged), profileText(Auto.Merged));
  EXPECT_GT(Auto.Result.ConsumerBatches, 0u);
}

// The counter reporting path end to end: dumpProfiles stamps the run's
// pipeline counters onto the first shard only, shard merging (rule:
// max / sum / sum) reconstructs the run totals, and the in-memory
// profiles themselves stay clean (they feed bit-identity comparisons).
TEST(PipelineCounters, StampedShardMergeReproducesRunTotals) {
  // runWorkload merges (and consumes) the per-thread profiles, so
  // drive the runtime directly to keep RunResult::Profiles around.
  auto W = workloads::makeTsp();
  RunConfig Cfg;
  Cfg.Sampling.Period = 2000;
  Cfg.Pipeline = PipelineKind::Decoupled;
  Cfg.PipelineCapacity = 1 << 10;
  ThreadedRuntime RT(Cfg);
  transform::FieldMap Map(W->hotLayout());
  workloads::BuiltWorkload Built = W->build(RT.machine(), Map, /*Scale=*/0.08);
  analysis::CodeMap CodeMap(*Built.Program);
  for (const auto &Phase : Built.Phases)
    RT.runPhase(*Built.Program, &CodeMap, Phase);
  RunResult Run = RT.finish();

  ASSERT_FALSE(Run.Profiles.empty());
  ASSERT_GT(Run.ConsumerBatches, 0u);
  for (const profile::Profile &P : Run.Profiles) {
    EXPECT_EQ(P.QueueDepthMax, 0u);
    EXPECT_EQ(P.ProducerStalls, 0u);
    EXPECT_EQ(P.ConsumerBatches, 0u);
  }

  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "ss_pipeline_counters_test";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  std::vector<std::string> Files =
      runtime::dumpProfiles(Run.Profiles, Dir.string(), "tsp.", nullptr, &Run);
  ASSERT_EQ(Files.size(), Run.Profiles.size());

  std::vector<profile::Profile> Loaded;
  for (const std::string &Name : Files) {
    std::ifstream In(Name, std::ios::binary);
    std::string Error;
    auto P = profile::readProfile(In, &Error);
    ASSERT_TRUE(P) << Name << ": " << Error;
    Loaded.push_back(std::move(*P));
  }
  profile::Profile Merged = profile::mergeProfiles(std::move(Loaded), 1);
  EXPECT_GT(Merged.TotalSamples, 0u);
  EXPECT_EQ(Merged.QueueDepthMax, Run.QueueDepthMax);
  EXPECT_EQ(Merged.ProducerStalls, Run.ProducerStalls);
  EXPECT_EQ(Merged.ConsumerBatches, Run.ConsumerBatches);
  fs::remove_all(Dir);
}

} // namespace
