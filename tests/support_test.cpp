//===- tests/support_test.cpp - support library tests ----------*- C++ -*-===//

#include "support/DotWriter.h"
#include "support/FlatHash.h"
#include "support/Error.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/MathUtil.h"
#include "support/Random.h"
#include "support/Stats.h"
#include "support/VarInt.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>

using namespace structslim;

// --- Format -------------------------------------------------------------

TEST(Format, Double) {
  EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
  EXPECT_EQ(formatDouble(1.0, 0), "1");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(formatPercent(0.733, 1), "73.3%");
  EXPECT_EQ(formatPercent(0.0), "0.0%");
  EXPECT_EQ(formatPercent(1.0), "100.0%");
}

TEST(Format, Times) { EXPECT_EQ(formatTimes(1.37), "1.37x"); }

TEST(Format, Hex) {
  EXPECT_EQ(formatHex(0), "0x0");
  EXPECT_EQ(formatHex(0x400000), "0x400000");
  EXPECT_EQ(formatHex(0xdeadbeef), "0xdeadbeef");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

// --- MathUtil ------------------------------------------------------------

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd64(0, 0), 0u);
  EXPECT_EQ(gcd64(0, 7), 7u);
  EXPECT_EQ(gcd64(48, 32), 16u);
  EXPECT_EQ(gcd64(56, 63), 7u);
}

TEST(MathUtil, Primes) {
  EXPECT_TRUE(primesUpTo(1).empty());
  EXPECT_EQ(primesUpTo(2), (std::vector<uint64_t>{2}));
  EXPECT_EQ(primesUpTo(20),
            (std::vector<uint64_t>{2, 3, 5, 7, 11, 13, 17, 19}));
  // pi(1000) = 168.
  EXPECT_EQ(primesUpTo(1000).size(), 168u);
}

TEST(MathUtil, LogBinomial) {
  EXPECT_NEAR(std::exp(logBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(logBinomial(10, 0)), 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(logBinomial(3, 5)));
}

TEST(MathUtil, BinomialRatio) {
  // C(5,2)/C(10,2) = 10/45.
  EXPECT_NEAR(binomialRatio(10, 2, 2), 10.0 / 45.0, 1e-9);
  // n/d < k -> 0.
  EXPECT_EQ(binomialRatio(10, 5, 3), 0.0);
}

// --- Stats ----------------------------------------------------------------

TEST(Stats, Mean) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_NEAR(mean({1, 2, 3}), 2.0, 1e-12);
}

TEST(Stats, Geomean) {
  EXPECT_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2, 8}), 4.0, 1e-9);
  EXPECT_NEAR(geomean({1.37, 1.09, 1.09, 1.03, 1.25, 1.12, 1.33}), 1.18,
              0.01); // The paper's Table 3 average.
}

TEST(Stats, Stddev) {
  EXPECT_EQ(stddev({1.0}), 0.0);
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.01);
}

// --- Rng -------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, SeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(Rng, BelowBound) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull})
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
}

TEST(Rng, RangeInclusive) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = R.nextInRange(5, 8);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 8u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u); // All values reachable.
}

TEST(Rng, DoubleUnit) {
  Rng R(11);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 10000, 0.5, 0.02);
}

// --- TablePrinter -----------------------------------------------------------

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T;
  T.setHeader({"Name", "Value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.toString();
  EXPECT_NE(Out.find("| Name   | Value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinter, PadsShortRows) {
  TablePrinter T;
  T.setHeader({"A", "B", "C"});
  T.addRow({"1"});
  std::string Out = T.toString();
  EXPECT_NE(Out.find("| 1 |   |   |"), std::string::npos);
}

// --- DotWriter ----------------------------------------------------------------

TEST(DotWriter, EmitsNodesEdgesClusters) {
  DotWriter W("g");
  W.addNode("a", "A", 0);
  W.addNode("b", "B", 0);
  W.addNode("c", "C");
  W.addEdge("a", "b", 0.86);
  std::string Out = W.toString();
  EXPECT_NE(Out.find("graph \"g\""), std::string::npos);
  EXPECT_NE(Out.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(Out.find("\"a\" -- \"b\" [label=\"0.86\"]"), std::string::npos);
  EXPECT_NE(Out.find("\"c\" [label=\"C\"]"), std::string::npos);
}

// --- Error -----------------------------------------------------------------

TEST(ErrorDeath, FatalAborts) {
  EXPECT_DEATH(fatalError("boom"), "structslim fatal error: boom");
}

TEST(ErrorDeath, UnreachableAborts) {
  EXPECT_DEATH(unreachable("nope"), "structslim unreachable: nope");
}

// --- VarInt -------------------------------------------------------------

TEST(VarInt, RoundTripsBoundaryValues) {
  const uint64_t Values[] = {0,      1,        127,        128,
                             16383,  16384,    0xffffffff, 1ull << 62,
                             ~0ull,  0x80,     0x3fff,     0x4000};
  std::string Buf;
  for (uint64_t V : Values)
    support::appendVarint(Buf, V);
  support::VarintReader R(Buf.data(), Buf.data() + Buf.size());
  for (uint64_t V : Values)
    EXPECT_EQ(R.readVarint(), V);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(VarInt, ZigzagRoundTripsSignedExtremes) {
  const int64_t Values[] = {0,  -1, 1,  -2, 2, INT64_MAX, INT64_MIN,
                            -4096, 4096};
  for (int64_t V : Values)
    EXPECT_EQ(support::zigzagDecode(support::zigzagEncode(V)), V);
  std::string Buf;
  for (int64_t V : Values)
    support::appendSVarint(Buf, V);
  support::VarintReader R(Buf.data(), Buf.data() + Buf.size());
  for (int64_t V : Values)
    EXPECT_EQ(R.readSVarint(), V);
  EXPECT_TRUE(R.ok());
}

TEST(VarInt, TruncatedReadLatchesError) {
  std::string Buf;
  support::appendVarint(Buf, 1u << 20); // Multi-byte encoding.
  for (size_t Cut = 0; Cut != Buf.size(); ++Cut) {
    support::VarintReader R(Buf.data(), Buf.data() + Cut);
    R.readVarint();
    EXPECT_FALSE(R.ok()) << "cut=" << Cut;
    // Error state latches: later reads stay failed.
    EXPECT_EQ(R.readVarint(), 0u);
    EXPECT_FALSE(R.ok());
  }
}

TEST(VarInt, NonTerminatingSequenceRejected) {
  std::string Buf(11, static_cast<char>(0x80)); // 11 continuation bytes.
  support::VarintReader R(Buf.data(), Buf.data() + Buf.size());
  R.readVarint();
  EXPECT_FALSE(R.ok());
}

TEST(VarInt, ReadBytesBoundsChecked) {
  std::string Buf = "abcdef";
  support::VarintReader R(Buf.data(), Buf.data() + Buf.size());
  const char *P = R.readBytes(4);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(std::string(P, 4), "abcd");
  EXPECT_EQ(R.readBytes(3), nullptr); // Only 2 left.
  EXPECT_FALSE(R.ok());
}

// --- FlatHash -----------------------------------------------------------

TEST(FlatHash, PairMapInsertFindGrow) {
  support::FlatPairMap Map;
  // Enough keys to force several growth steps.
  for (uint32_t I = 0; I != 1000; ++I) {
    bool Inserted = false;
    uint32_t V = Map.getOrInsert(0x400000 + I, I % 7, I, Inserted);
    EXPECT_TRUE(Inserted);
    EXPECT_EQ(V, I);
  }
  EXPECT_EQ(Map.size(), 1000u);
  for (uint32_t I = 0; I != 1000; ++I) {
    EXPECT_EQ(Map.find(0x400000 + I, I % 7), I);
    bool Inserted = true;
    EXPECT_EQ(Map.getOrInsert(0x400000 + I, I % 7, 9999, Inserted), I);
    EXPECT_FALSE(Inserted);
  }
  EXPECT_EQ(Map.find(0x500000, 0), support::FlatPairMap::Npos);
  Map.clear();
  EXPECT_EQ(Map.size(), 0u);
  EXPECT_EQ(Map.find(0x400000, 0), support::FlatPairMap::Npos);
}

TEST(FlatHash, PairMapDistinguishesBothKeyHalves) {
  support::FlatPairMap Map;
  bool Inserted = false;
  Map.getOrInsert(1, 1, 11, Inserted);
  Map.getOrInsert(1, 2, 12, Inserted);
  Map.getOrInsert(2, 1, 21, Inserted);
  EXPECT_EQ(Map.find(1, 1), 11u);
  EXPECT_EQ(Map.find(1, 2), 12u);
  EXPECT_EQ(Map.find(2, 1), 21u);
  EXPECT_EQ(Map.find(2, 2), support::FlatPairMap::Npos);
}

TEST(FlatHash, U64SetHandlesZeroAndDuplicates) {
  support::FlatU64Set Set;
  EXPECT_TRUE(Set.insert(0)); // Zero needs its own slot logic.
  EXPECT_FALSE(Set.insert(0));
  for (uint64_t V = 1; V != 500; ++V)
    EXPECT_TRUE(Set.insert(V * 0x10001));
  for (uint64_t V = 1; V != 500; ++V)
    EXPECT_FALSE(Set.insert(V * 0x10001));
  EXPECT_EQ(Set.size(), 500u);
  Set.clear();
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_TRUE(Set.insert(0));
  EXPECT_TRUE(Set.insert(42));
}

// --- MappedFile ---------------------------------------------------------

namespace {

std::string mappedFileScratch(const std::string &Name) {
  return ::testing::TempDir() + "mappedfile_" + Name;
}

void writeScratch(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
  ASSERT_TRUE(Out.good());
}

} // namespace

TEST(MappedFile, RoundTripsExactBytes) {
  std::string Contents("structslim\0binary\xff payload\n", 27);
  Contents += std::string(10000, 'x'); // Spill past one page.
  std::string Path = mappedFileScratch("roundtrip.bin");
  writeScratch(Path, Contents);
  std::string Error;
  auto File = support::MappedFile::open(Path, &Error);
  ASSERT_TRUE(File.has_value()) << Error;
  EXPECT_EQ(File->bytes(), std::string_view(Contents));
}

TEST(MappedFile, MissingFileIsAnError) {
  std::string Error;
  auto File =
      support::MappedFile::open(mappedFileScratch("does_not_exist"), &Error);
  EXPECT_FALSE(File.has_value());
  EXPECT_FALSE(Error.empty());
}

TEST(MappedFile, EmptyFileYieldsEmptyBytes) {
  std::string Path = mappedFileScratch("empty.bin");
  writeScratch(Path, "");
  std::string Error;
  auto File = support::MappedFile::open(Path, &Error);
  ASSERT_TRUE(File.has_value()) << Error;
  EXPECT_TRUE(File->bytes().empty());
  EXPECT_FALSE(File->isMapped()); // Zero-size mappings are not portable.
}

TEST(MappedFile, MoveTransfersOwnership) {
  std::string Path = mappedFileScratch("move.bin");
  writeScratch(Path, "move me");
  std::string Error;
  auto File = support::MappedFile::open(Path, &Error);
  ASSERT_TRUE(File.has_value()) << Error;
  support::MappedFile Stolen = std::move(*File);
  EXPECT_EQ(Stolen.bytes(), std::string_view("move me"));
  EXPECT_TRUE(File->bytes().empty()); // Moved-from view is empty, not stale.
}

TEST(MappedFile, NoMmapEnvForcesBufferedFallback) {
#if defined(__unix__) || defined(__APPLE__)
  std::string Path = mappedFileScratch("fallback.bin");
  writeScratch(Path, "same bytes either way");
  std::string Error;
  ASSERT_EQ(::setenv("STRUCTSLIM_NO_MMAP", "1", 1), 0);
  auto Buffered = support::MappedFile::open(Path, &Error);
  ASSERT_EQ(::unsetenv("STRUCTSLIM_NO_MMAP"), 0);
  auto Mapped = support::MappedFile::open(Path, &Error);
  ASSERT_TRUE(Buffered.has_value());
  ASSERT_TRUE(Mapped.has_value());
  EXPECT_FALSE(Buffered->isMapped());
  EXPECT_EQ(Buffered->bytes(), Mapped->bytes());
#else
  GTEST_SKIP() << "no setenv on this platform";
#endif
}
