//===- tests/benefitmodel_test.cpp - What-if estimator tests ---*- C++ -*-===//

#include "core/BenefitModel.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;

namespace {

/// An object with two 8-byte fields in a 64-byte struct; \p HotMiss
/// controls the hot field's beyond-L1 sample fraction.
ObjectAnalysis makeObject(double HotShare, uint64_t HotLatency,
                          uint64_t ColdLatency, double HotMiss) {
  ObjectAnalysis O;
  O.Name = "s";
  O.HotShare = HotShare;
  O.StructSize = 64;
  FieldStat Hot;
  Hot.Offset = 0;
  Hot.Name = "hot";
  Hot.Size = 8;
  Hot.LatencySum = HotLatency;
  uint64_t Samples = 100;
  Hot.LevelSamples[0] = static_cast<uint64_t>(Samples * (1 - HotMiss));
  Hot.LevelSamples[2] = Samples - Hot.LevelSamples[0];
  FieldStat Cold = Hot;
  Cold.Offset = 8;
  Cold.Name = "cold";
  Cold.LatencySum = ColdLatency;
  O.Fields = {Hot, Cold};
  O.LatencySum = HotLatency + ColdLatency;
  return O;
}

SplitPlan twoWayPlan() {
  SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 64;
  Plan.ClusterOffsets = {{0}, {8}};
  return Plan;
}

} // namespace

TEST(BenefitModel, PureMissFieldScalesByClusterRatio) {
  // All latency on one always-missing 8-byte field of a 64-byte
  // struct: splitting shrinks its sweep footprint 8x, removing 7/8 of
  // its (and hence nearly all the object's) latency.
  ObjectAnalysis O = makeObject(1.0, 1000, 0, /*HotMiss=*/1.0);
  BenefitEstimate Est = estimateSplitBenefit(O, twoWayPlan(), 1.0);
  EXPECT_NEAR(Est.ObjectLatencyReduction, 7.0 / 8.0, 1e-9);
  EXPECT_NEAR(Est.PredictedSpeedup, 1.0 / (1.0 - 7.0 / 8.0), 1e-6);
  ASSERT_EQ(Est.ClusterSizes.size(), 2u);
  EXPECT_EQ(Est.ClusterSizes[0], 8u);
}

TEST(BenefitModel, L1ResidentFieldGainsNothing) {
  ObjectAnalysis O = makeObject(1.0, 1000, 0, /*HotMiss=*/0.0);
  BenefitEstimate Est = estimateSplitBenefit(O, twoWayPlan(), 1.0);
  EXPECT_NEAR(Est.ObjectLatencyReduction, 0.0, 1e-9);
  EXPECT_NEAR(Est.PredictedSpeedup, 1.0, 1e-9);
}

TEST(BenefitModel, AmdahlDampensByShareAndMemoryFraction) {
  ObjectAnalysis O = makeObject(/*HotShare=*/0.5, 1000, 0, 1.0);
  BenefitEstimate Full = estimateSplitBenefit(O, twoWayPlan(), 1.0);
  BenefitEstimate Half = estimateSplitBenefit(O, twoWayPlan(), 0.5);
  // Affected fraction 0.5: speedup = 1/(1 - 0.5*7/8).
  EXPECT_NEAR(Full.PredictedSpeedup, 1.0 / (1.0 - 0.5 * 7.0 / 8.0), 1e-6);
  EXPECT_LT(Half.PredictedSpeedup, Full.PredictedSpeedup);
  EXPECT_GT(Half.PredictedSpeedup, 1.0);
}

TEST(BenefitModel, NonSplitPlanPredictsNothing) {
  ObjectAnalysis O = makeObject(1.0, 1000, 0, 1.0);
  SplitPlan Plan;
  Plan.ObjectName = "s";
  Plan.OriginalSize = 64;
  Plan.ClusterOffsets = {{0, 8}};
  BenefitEstimate Est = estimateSplitBenefit(O, Plan, 1.0);
  EXPECT_EQ(Est.ObjectLatencyReduction, 0.0);
  EXPECT_EQ(Est.PredictedSpeedup, 1.0);
}

TEST(BenefitModel, UnknownSizeGivesNoEstimate) {
  ObjectAnalysis O = makeObject(1.0, 1000, 0, 1.0);
  O.StructSize = 0;
  SplitPlan Plan = twoWayPlan();
  Plan.OriginalSize = 0;
  BenefitEstimate Est = estimateSplitBenefit(O, Plan, 1.0);
  EXPECT_EQ(Est.PredictedSpeedup, 1.0);
}

TEST(BenefitModel, BiggerClustersGainLess) {
  // Same object, two plans: {hot} alone vs {hot + 24 bytes of friends}.
  ObjectAnalysis O = makeObject(1.0, 1000, 0, 1.0);
  // Give the plan a fat cluster by listing extra 8-byte fields.
  FieldStat Extra1 = O.Fields[0];
  Extra1.Offset = 16;
  Extra1.Name = "e1";
  Extra1.LatencySum = 0;
  FieldStat Extra2 = Extra1;
  Extra2.Offset = 24;
  Extra2.Name = "e2";
  O.Fields.push_back(Extra1);
  O.Fields.push_back(Extra2);

  SplitPlan Thin = twoWayPlan();
  SplitPlan Fat;
  Fat.ObjectName = "s";
  Fat.OriginalSize = 64;
  Fat.ClusterOffsets = {{0, 16, 24}, {8}};
  BenefitEstimate ThinEst = estimateSplitBenefit(O, Thin, 1.0);
  BenefitEstimate FatEst = estimateSplitBenefit(O, Fat, 1.0);
  EXPECT_GT(ThinEst.ObjectLatencyReduction,
            FatEst.ObjectLatencyReduction);
  EXPECT_EQ(FatEst.ClusterSizes[0], 24u);
}
