//===- tests/cct_test.cpp - Calling-context-tree tests ---------*- C++ -*-===//

#include "analysis/CodeMap.h"
#include "core/Report.h"
#include "ir/ProgramBuilder.h"
#include "profile/Cct.h"
#include "profile/MergeTree.h"
#include "profile/ProfileIO.h"
#include "runtime/ThreadedRuntime.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::profile;
using structslim::ir::Reg;

TEST(Cct, InternDeduplicatesPaths) {
  CallContextTree T;
  uint32_t A = T.intern({10, 20, 30});
  uint32_t B = T.intern({10, 20, 30});
  uint32_t C = T.intern({10, 20, 31});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  // Root + 10 + 20 + 30 + 31.
  EXPECT_EQ(T.size(), 5u);
}

TEST(Cct, PathRoundTrip) {
  CallContextTree T;
  std::vector<uint64_t> Path = {0x400001, 0x400010, 0x400123};
  uint32_t Leaf = T.intern(Path);
  EXPECT_EQ(T.path(Leaf), Path);
  EXPECT_TRUE(T.path(CallContextTree::Root).empty());
}

TEST(Cct, EmptyPathIsRoot) {
  CallContextTree T;
  EXPECT_EQ(T.intern({}), CallContextTree::Root);
}

TEST(Cct, AttributeAndSubtreeLatency) {
  CallContextTree T;
  uint32_t AB = T.intern({1, 2});
  uint32_t AC = T.intern({1, 3});
  uint32_t A = T.intern({1});
  T.attribute(AB, 100);
  T.attribute(AC, 50);
  T.attribute(A, 7);
  EXPECT_EQ(T.node(AB).LatencySum, 100u);
  EXPECT_EQ(T.node(AB).SampleCount, 1u);
  EXPECT_EQ(T.subtreeLatency(A), 157u);
  EXPECT_EQ(T.subtreeLatency(AB), 100u);
  EXPECT_EQ(T.subtreeLatency(CallContextTree::Root), 157u);
}

TEST(Cct, HottestOrdersByExclusiveLatency) {
  CallContextTree T;
  uint32_t Hot = T.intern({1, 2});
  uint32_t Warm = T.intern({1, 3});
  T.intern({1, 4}); // Never attributed: excluded.
  T.attribute(Hot, 500);
  T.attribute(Warm, 100);
  auto Top = T.hottest(10);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0], Hot);
  EXPECT_EQ(Top[1], Warm);
  EXPECT_EQ(T.hottest(1).size(), 1u);
}

TEST(Cct, MergeAlignsPathsByIp) {
  CallContextTree A, B;
  A.attribute(A.intern({1, 2}), 10);
  B.attribute(B.intern({1, 2}), 5);
  B.attribute(B.intern({9}), 7);
  A.merge(B);
  EXPECT_EQ(A.node(A.intern({1, 2})).LatencySum, 15u);
  EXPECT_EQ(A.node(A.intern({1, 2})).SampleCount, 2u);
  EXPECT_EQ(A.node(A.intern({9})).LatencySum, 7u);
  EXPECT_EQ(A.subtreeLatency(CallContextTree::Root), 22u);
}

TEST(Cct, SerializationRoundTripViaProfile) {
  Profile P;
  P.Contexts.attribute(P.Contexts.intern({11, 22}), 40);
  P.Contexts.attribute(P.Contexts.intern({11, 33}), 4);
  auto Back = profileFromString(profileToString(P));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Contexts.size(), P.Contexts.size());
  uint32_t Leaf = Back->Contexts.intern({11, 22});
  EXPECT_EQ(Back->Contexts.node(Leaf).LatencySum, 40u);
  EXPECT_EQ(Back->Contexts.subtreeLatency(CallContextTree::Root), 44u);
}

TEST(Cct, BadParentRejectedOnLoad) {
  std::string Text = "structslim-profile v1\nmeta 0 1 0 0 0 0 0 0\n"
                     "cctnode 99 5 1 1\n";
  std::string Error;
  EXPECT_FALSE(profileFromString(Text, &Error).has_value());
  EXPECT_NE(Error.find("unknown parent"), std::string::npos);
}

// End-to-end: samples taken inside a callee carry the caller's call
// site in their context.
TEST(CctIntegration, NestedCallsProduceNestedContexts) {
  ir::Program P;
  ir::Function &Worker = P.addFunction("hotwork", 1);
  {
    ir::ProgramBuilder B(P, Worker);
    Reg Base = 0;
    B.setLine(100);
    B.forLoopI(0, 50000, 1, [&](Reg I) {
      B.setLine(101);
      Reg Idx = B.andI(I, 4095);
      B.accumulate(Base, B.load(Base, Idx, 8, 0, 8));
      B.setLine(100);
    });
    B.ret();
  }
  ir::Function &Main = P.addFunction("main", 0);
  P.setEntry(Main.Id);
  uint64_t CallIp;
  {
    ir::ProgramBuilder B(P, Main);
    B.setLine(10);
    Reg Bytes = B.constI(64 * 4096);
    Reg Arr = B.alloc(Bytes, "arr");
    B.call(Worker, {Arr});
    CallIp = Main.Blocks[0]->Instrs.back().Ip;
    B.ret();
  }

  runtime::RunConfig Cfg;
  Cfg.Sampling.Period = 500;
  runtime::ThreadedRuntime RT(Cfg);
  analysis::CodeMap Map(P);
  RT.runPhase(P, &Map, {runtime::ThreadSpec{Main.Id, {}}});
  runtime::RunResult R = RT.finish();
  ASSERT_EQ(R.Profiles.size(), 1u);
  const CallContextTree &Cct = R.Profiles[0].Contexts;
  ASSERT_GT(Cct.size(), 1u);

  auto Top = Cct.hottest(1);
  ASSERT_EQ(Top.size(), 1u);
  std::vector<uint64_t> Path = Cct.path(Top[0]);
  // The hottest context is main's call site -> the load inside hotwork.
  ASSERT_EQ(Path.size(), 2u);
  EXPECT_EQ(Path[0], CallIp);
  const analysis::CodeSite &Leaf = Map.lookup(Path[1]);
  ASSERT_TRUE(Leaf.Valid);
  EXPECT_EQ(Map.getFunctionName(Leaf.FuncId), "hotwork");
  EXPECT_EQ(Leaf.Line, 101u);

  // The rendered report resolves names.
  std::string Report = core::renderHotContexts(R.Profiles[0], &Map, 5);
  EXPECT_NE(Report.find("main:L10 > hotwork:L101"), std::string::npos);
}

TEST(CctIntegration, MergePreservesTotals) {
  // Reduction-tree merging keeps CCT latency totals.
  std::vector<Profile> Profiles;
  for (uint32_t T = 0; T != 4; ++T) {
    Profile P;
    P.Contexts.attribute(P.Contexts.intern({1, 2}), 10 * (T + 1));
    Profiles.push_back(std::move(P));
  }
  Profile Merged = mergeProfiles(std::move(Profiles), 2);
  EXPECT_EQ(Merged.Contexts.subtreeLatency(CallContextTree::Root), 100u);
}
