//===- tests/codemap_test.cpp - Program-wide IP attribution ----*- C++ -*-===//

#include "analysis/CodeMap.h"
#include "ir/Program.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::analysis;
using structslim::ir::Reg;

namespace {

struct TwoFunctionProgram {
  ir::Program P;
  uint64_t LoopLoadIp = 0;    // A load inside main's loop.
  uint64_t StraightIp = 0;    // An instruction outside any loop.
  uint64_t HelperLoopIp = 0;  // Inside helper's loop.
  uint32_t HelperId = 0;

  TwoFunctionProgram() {
    ir::Function &Helper = P.addFunction("helper", 1);
    HelperId = Helper.Id;
    {
      ir::ProgramBuilder B(P, Helper);
      B.setLine(200);
      B.forLoopI(0, 4, 1, [&](Reg) {
        B.setLine(201);
        B.work(1);
        HelperLoopIp = Helper.Blocks[B.currentBlock()]->Instrs.back().Ip;
        B.setLine(200);
      });
      B.ret();
    }
    ir::Function &Main = P.addFunction("main", 0);
    P.setEntry(Main.Id);
    {
      ir::ProgramBuilder B(P, Main);
      B.setLine(10);
      Reg C = B.constI(1);
      StraightIp = Main.Blocks[0]->Instrs.back().Ip;
      B.forLoopI(0, 4, 1, [&](Reg) {
        B.setLine(11);
        B.work(1);
        LoopLoadIp = Main.Blocks[B.currentBlock()]->Instrs.back().Ip;
        B.setLine(10);
      });
      B.call(Helper, {C});
      B.ret();
    }
  }
};

} // namespace

TEST(CodeMap, AttributesLoopInstructions) {
  TwoFunctionProgram T;
  CodeMap Map(T.P);
  const CodeSite &Site = Map.lookup(T.LoopLoadIp);
  ASSERT_TRUE(Site.Valid);
  EXPECT_GE(Site.LoopId, 0);
  EXPECT_EQ(Site.Line, 11u);
  const LoopRecord &L = Map.getLoop(static_cast<uint32_t>(Site.LoopId));
  EXPECT_EQ(L.FuncName, "main");
  EXPECT_EQ(L.LineBegin, 10u);
  EXPECT_EQ(L.LineEnd, 11u);
  EXPECT_EQ(L.name(), "10-11");
}

TEST(CodeMap, StraightLineHasNoLoop) {
  TwoFunctionProgram T;
  CodeMap Map(T.P);
  const CodeSite &Site = Map.lookup(T.StraightIp);
  ASSERT_TRUE(Site.Valid);
  EXPECT_EQ(Site.LoopId, -1);
  EXPECT_EQ(Site.Line, 10u);
}

TEST(CodeMap, GlobalLoopIdsSpanFunctions) {
  TwoFunctionProgram T;
  CodeMap Map(T.P);
  const CodeSite &MainSite = Map.lookup(T.LoopLoadIp);
  const CodeSite &HelperSite = Map.lookup(T.HelperLoopIp);
  ASSERT_TRUE(MainSite.Valid);
  ASSERT_TRUE(HelperSite.Valid);
  EXPECT_NE(MainSite.LoopId, HelperSite.LoopId);
  EXPECT_EQ(Map.getLoop(static_cast<uint32_t>(HelperSite.LoopId)).FuncName,
            "helper");
  EXPECT_EQ(Map.loops().size(), 2u);
}

TEST(CodeMap, ForeignIpsAreInvalid) {
  TwoFunctionProgram T;
  CodeMap Map(T.P);
  EXPECT_FALSE(Map.lookup(0).Valid);
  EXPECT_FALSE(Map.lookup(ir::Program::TextBase - 1).Valid);
  EXPECT_FALSE(Map.lookup(T.P.getIpEnd()).Valid);
}

TEST(CodeMap, EveryInstructionIsMapped) {
  TwoFunctionProgram T;
  CodeMap Map(T.P);
  for (const auto &F : T.P.functions())
    for (const auto &BB : F->Blocks)
      for (const ir::Instr &I : BB->Instrs) {
        const CodeSite &Site = Map.lookup(I.Ip);
        ASSERT_TRUE(Site.Valid) << "ip " << I.Ip;
        EXPECT_EQ(Site.FuncId, F->Id);
        EXPECT_EQ(Site.Line, I.Line);
      }
}

TEST(CodeMap, LoopParentLinksAreGlobal) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  B.forLoopI(0, 2, 1, [&](Reg) { B.forLoopI(0, 2, 1, [&](Reg) {}); });
  B.ret();
  CodeMap Map(P);
  ASSERT_EQ(Map.loops().size(), 2u);
  int Children = 0;
  for (const LoopRecord &L : Map.loops())
    if (L.Parent >= 0) {
      ++Children;
      EXPECT_EQ(Map.getLoop(static_cast<uint32_t>(L.Parent)).Depth + 1,
                L.Depth);
    }
  EXPECT_EQ(Children, 1);
}
