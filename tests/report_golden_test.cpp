//===- tests/report_golden_test.cpp - Golden end-to-end report -*- C++ -*-===//
//
// Runs the real structslim-report binary on a recorded profile fixture
// in the legacy unversioned v1 format (tests/data/clomp.thread*.
// structslim, captured from the parallel_profiling example) and
// asserts byte-identical advice and DOT output against checked-in
// goldens. One test, two regressions covered: the backward-compat
// reader must keep accepting pre-versioning profiles, and the analysis
// output on a fixed profile must not drift silently.
//
// Also exercises the tool's degradation contract end to end: a corrupt
// shard is skipped with a warning by default, and --strict exits
// nonzero naming the failing path.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

std::string dataPath(const std::string &Name) {
  return std::string(STRUCTSLIM_TEST_DATA) + "/" + Name;
}

std::vector<std::string> fixtureShards() {
  std::vector<std::string> Files;
  for (int T = 0; T != 5; ++T)
    Files.push_back(dataPath("clomp.thread" + std::to_string(T) +
                             ".structslim"));
  return Files;
}

struct CommandResult {
  int ExitCode = -1;
  std::string Output; ///< stdout and stderr, interleaved.
};

/// Runs the report tool with \p Args appended; captures both streams.
CommandResult runReport(const std::vector<std::string> &Args) {
  std::string Cmd = std::string(STRUCTSLIM_REPORT_BIN);
  for (const std::string &A : Args)
    Cmd += " " + A;
  Cmd += " 2>&1";
  CommandResult Result;
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return Result;
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), Pipe)) != 0)
    Result.Output.append(Buffer, N);
  int Status = pclose(Pipe);
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Result;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

} // namespace

TEST(ReportGolden, V1FixtureReportIsByteIdentical) {
  CommandResult R = runReport(fixtureShards());
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, readFileBytes(dataPath("golden_report.txt")));
  // The semantic core of the golden: the paper's Fig. 11 split of
  // CLOMP's zone struct, recovered from legacy-format shards.
  // The fixture's size rests on one well-sampled stream plus sparse
  // ones, so the advice carries the low-confidence marker.
  EXPECT_NE(R.Output.find(
                "split '_Zone' (size 32 bytes, low-confidence size) "
                "into 2 structures"),
            std::string::npos);
  EXPECT_NE(R.Output.find("struct _Zone_0 { long off16; long off24; };"),
            std::string::npos);
}

TEST(ReportGolden, V1FixtureDotIsByteIdentical) {
  std::vector<std::string> Args = {"--dot=_Zone"};
  for (const std::string &F : fixtureShards())
    Args.push_back(F);
  CommandResult R = runReport(Args);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, readFileBytes(dataPath("golden_affinity.dot")));
  EXPECT_NE(R.Output.find("graph \"affinity__Zone\""), std::string::npos);
}

TEST(ReportGolden, CorruptShardIsSkippedWithWarningByDefault) {
  std::vector<std::string> Args = {dataPath("corrupt.structslim")};
  for (const std::string &F : fixtureShards())
    Args.push_back(F);
  CommandResult R = runReport(Args);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("warning: skipping"), std::string::npos);
  EXPECT_NE(R.Output.find("corrupt.structslim"), std::string::npos);
  // All five good shards still merge: the partial set is well-defined.
  EXPECT_NE(R.Output.find("merged 5 profile(s)"), std::string::npos);
  EXPECT_NE(R.Output.find("struct _Zone_0"), std::string::npos);
}

TEST(ReportGolden, StrictExitsNonzeroNamingThePath) {
  std::vector<std::string> Args = {"--strict", dataPath("corrupt.structslim")};
  for (const std::string &F : fixtureShards())
    Args.push_back(F);
  CommandResult R = runReport(Args);
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("error:"), std::string::npos);
  EXPECT_NE(R.Output.find("corrupt.structslim"), std::string::npos);
  // Strict failed fast: no report was produced.
  EXPECT_EQ(R.Output.find("merged"), std::string::npos);
}

TEST(ReportGolden, AllShardsUnreadableFailsEvenWhenLenient) {
  CommandResult R = runReport({dataPath("corrupt.structslim")});
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("no readable profiles"), std::string::npos);
}

// --- Defensive CLI parsing ----------------------------------------------

TEST(ReportCli, MalformedNumericValueExitsTwoWithUsage) {
  // The historical failure: strtoul-style parsing accepted garbage or
  // aborted. Every malformed value must exit 2 and point at the flag.
  struct Case {
    const char *Arg;
    const char *Flag;
  } Cases[] = {
      {"--top=abc", "--top"},           {"--top=", "--top"},
      {"--top=-3", "--top"},            {"--top=7x", "--top"},
      {"--jobs=1x", "--jobs"},          {"--jobs=", "--jobs"},
      {"--threshold=0..5", "--threshold"}, {"--threshold=nan?", "--threshold"},
      {"--min-unique=ten", "--min-unique"},
      {"--top=99999999999999999999", "--top"},
  };
  for (const Case &C : Cases) {
    CommandResult R = runReport({C.Arg, fixtureShards()[0]});
    EXPECT_EQ(R.ExitCode, 2) << C.Arg << "\n" << R.Output;
    EXPECT_NE(R.Output.find("error: invalid value"), std::string::npos)
        << C.Arg << "\n" << R.Output;
    EXPECT_NE(R.Output.find(C.Flag), std::string::npos) << R.Output;
    EXPECT_NE(R.Output.find("usage:"), std::string::npos) << R.Output;
  }
}

TEST(ReportCli, UnknownOptionExitsTwoWithUsage) {
  CommandResult R = runReport({"--frobnicate", fixtureShards()[0]});
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("error: unknown option '--frobnicate'"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

TEST(ReportCli, StructureToolRejectsUnknownOption) {
  std::string Cmd = std::string(STRUCTSLIM_STRUCTURE_BIN);
  Cmd += " --bogus-flag 2>&1";
  std::string Output;
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), Pipe)) != 0)
    Output.append(Buffer, N);
  int Status = pclose(Pipe);
  EXPECT_EQ(WIFEXITED(Status) ? WEXITSTATUS(Status) : -1, 2) << Output;
  EXPECT_NE(Output.find("error: unknown option '--bogus-flag'"),
            std::string::npos)
      << Output;
  EXPECT_NE(Output.find("usage:"), std::string::npos);
}

// --- Machine-readable output --------------------------------------------

TEST(ReportJson, EmitsStableSchemaDocument) {
  std::vector<std::string> Args = {"--json"};
  for (const std::string &F : fixtureShards())
    Args.push_back(F);
  CommandResult R = runReport(Args);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  for (const char *Key :
       {"\"schema_version\": 1", "\"generator\": \"structslim-report\"",
        "\"profile\":", "\"shards_merged\": 5", "\"config\":", "\"objects\":",
        "\"_Zone\"", "\"affinity\":", "\"clusters\":", "\"stats\":",
        "\"timing\":", "\"analyze_seconds\":", "\"split_recommended\": true"})
    EXPECT_NE(R.Output.find(Key), std::string::npos) << Key << "\n" << R.Output;
  // JSON mode owns stdout completely: no text preamble leaks in.
  EXPECT_EQ(R.Output.find("merged 5 profile(s)"), std::string::npos);
  EXPECT_EQ(R.Output.rfind('{', 0), 0u) << "document must start with '{'";
}

TEST(ReportJson, StatsGoToStderrNotIntoTheDocument) {
  // Split streams: stdout must stay parseable JSON while --stats prints.
  std::string Cmd = std::string(STRUCTSLIM_REPORT_BIN) + " --json --stats";
  for (const std::string &F : fixtureShards())
    Cmd += " " + F;
  Cmd += " 2>/dev/null";
  std::string Output;
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  char Buffer[4096];
  size_t N;
  while ((N = fread(Buffer, 1, sizeof(Buffer), Pipe)) != 0)
    Output.append(Buffer, N);
  int Status = pclose(Pipe);
  EXPECT_EQ(WIFEXITED(Status) ? WEXITSTATUS(Status) : -1, 0);
  EXPECT_EQ(Output.rfind('{', 0), 0u);
  EXPECT_EQ(Output.find("Pipeline stats"), std::string::npos);
  EXPECT_NE(Output.find("\"objects_analyzed\":"), std::string::npos);
}

TEST(ReportStatsFlag, TextModePrintsPipelineBlock) {
  std::vector<std::string> Args = {"--stats"};
  for (const std::string &F : fixtureShards())
    Args.push_back(F);
  CommandResult R = runReport(Args);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("=== Pipeline stats ==="), std::string::npos);
  EXPECT_NE(R.Output.find("shard(s) merged"), std::string::npos);
  EXPECT_NE(R.Output.find("jobs="), std::string::npos);
}

// --- Parallel determinism at the tool level -----------------------------

TEST(ReportParallel, JobCountNeverChangesTheTextReport) {
  std::vector<std::string> One = {"--jobs=1"}, Four = {"--jobs=4"};
  for (const std::string &F : fixtureShards()) {
    One.push_back(F);
    Four.push_back(F);
  }
  CommandResult R1 = runReport(One);
  CommandResult R4 = runReport(Four);
  ASSERT_EQ(R1.ExitCode, 0) << R1.Output;
  ASSERT_EQ(R4.ExitCode, 0) << R4.Output;
  EXPECT_EQ(R1.Output, R4.Output);
  // And both still match the checked-in golden byte for byte.
  EXPECT_EQ(R1.Output, readFileBytes(dataPath("golden_report.txt")));
}
