#!/bin/sh
# Regenerates the closed-loop golden files under tests/data/:
#   advice_<workload>.golden  - pinned advice text + SplitPlan JSON
#   golden_verify.json        - structslim-verify's JSON deltas
# Run after an intentional change to sampling, analysis, clustering,
# advice rendering, or the verify schema, then review the diff.
#
# Usage: tests/regen_advice_goldens.sh [build-dir]   (default: build)
set -e
BUILD_DIR="${1:-build}"
if [ ! -x "$BUILD_DIR/tests/advice_golden_test" ] || \
   [ ! -x "$BUILD_DIR/tests/verify_golden_test" ]; then
  echo "error: build the test targets first:" >&2
  echo "  cmake --build $BUILD_DIR -j --target advice_golden_test verify_golden_test" >&2
  exit 1
fi
STRUCTSLIM_REGEN_GOLDENS=1 "$BUILD_DIR/tests/advice_golden_test" \
  --gtest_filter='PaperWorkloads/AdviceGolden.*'
STRUCTSLIM_REGEN_GOLDENS=1 "$BUILD_DIR/tests/verify_golden_test" \
  --gtest_filter='VerifyGolden.SevenWorkloadJsonDeltasMatchGolden'
echo "goldens regenerated under tests/data/ - review with git diff"
