//===- tests/cache_test.cpp - Cache & hierarchy tests ----------*- C++ -*-===//

#include "cache/Cache.h"
#include "cache/Hierarchy.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace structslim;
using namespace structslim::cache;

namespace {

/// A tiny 2-set, 2-way cache for exact LRU checks: 4 lines of 64 B.
CacheConfig tinyConfig() {
  CacheConfig C;
  C.Name = "tiny";
  C.SizeBytes = 4 * 64;
  C.Assoc = 2;
  C.LineSize = 64;
  C.HitLatency = 4;
  return C;
}

} // namespace

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache C(tinyConfig());
  EXPECT_FALSE(C.access(10));
  EXPECT_TRUE(C.access(10));
  EXPECT_EQ(C.getMisses(), 1u);
  EXPECT_EQ(C.getHits(), 1u);
}

TEST(SetAssocCache, LruEviction) {
  SetAssocCache C(tinyConfig()); // 2 sets: lines map by line % 2.
  // Lines 0, 2, 4 all map to set 0 (even).
  C.access(0);
  C.access(2);
  C.access(4); // Evicts 0 (LRU).
  EXPECT_FALSE(C.access(0));
  // Now 2 was evicted (it became LRU after 4 and 0 installed).
  EXPECT_FALSE(C.access(2));
}

TEST(SetAssocCache, LruTouchRefreshes) {
  SetAssocCache C(tinyConfig());
  C.access(0);
  C.access(2);
  C.access(0); // Refresh 0; 2 becomes LRU.
  C.access(4); // Evicts 2.
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(2));
}

TEST(SetAssocCache, SetsAreIndependent) {
  SetAssocCache C(tinyConfig());
  C.access(0); // Set 0.
  C.access(1); // Set 1.
  C.access(3); // Set 1.
  EXPECT_TRUE(C.access(0)); // Untouched by set-1 traffic.
}

TEST(SetAssocCache, NonPowerOfTwoSets) {
  // 20 MB, 16-way, 64 B lines: 20480 sets (the paper's L3 geometry).
  CacheConfig C;
  C.SizeBytes = 20 * 1024 * 1024;
  C.Assoc = 16;
  C.LineSize = 64;
  SetAssocCache Cache(C);
  for (uint64_t L = 0; L != 1000; ++L)
    Cache.access(L);
  for (uint64_t L = 0; L != 1000; ++L)
    EXPECT_TRUE(Cache.access(L)) << "line " << L;
}

TEST(SetAssocCache, WorkingSetLargerThanCacheThrashes) {
  SetAssocCache C(tinyConfig()); // 4 lines total.
  for (int Round = 0; Round != 3; ++Round)
    for (uint64_t L = 0; L != 8; ++L)
      C.access(L);
  // Cyclic sweep over 2x capacity with LRU: every access misses.
  EXPECT_EQ(C.getMisses(), 24u);
}

TEST(SetAssocCache, PrefetchInstallDoesNotCountDemand) {
  SetAssocCache C(tinyConfig());
  C.installPrefetch(6);
  EXPECT_EQ(C.getAccesses(), 0u);
  EXPECT_EQ(C.getPrefetchFills(), 1u);
  EXPECT_TRUE(C.access(6)); // Hit thanks to the prefetch.
}

TEST(SetAssocCache, ContainsIsSideEffectFree) {
  SetAssocCache C(tinyConfig());
  C.access(0);
  C.access(2);
  EXPECT_TRUE(C.contains(0));
  EXPECT_TRUE(C.contains(2));
  EXPECT_FALSE(C.contains(4));
  // contains() must not refresh LRU: 0 is still the eviction victim.
  C.access(4);
  EXPECT_FALSE(C.contains(0));
}

TEST(SetAssocCache, BadGeometryAborts) {
  CacheConfig C;
  C.SizeBytes = 100; // Not a multiple of assoc * line.
  C.Assoc = 8;
  C.LineSize = 64;
  EXPECT_DEATH(SetAssocCache{C}, "multiple of assoc");
  CacheConfig C2;
  C2.LineSize = 48;
  EXPECT_DEATH(SetAssocCache{C2}, "power of two");
}

// --- MemoryHierarchy --------------------------------------------------------

namespace {

HierarchyConfig smallHierarchy() {
  HierarchyConfig H;
  H.L1 = {"L1", 1024, 2, 64, 4};
  H.L2 = {"L2", 4096, 4, 64, 12};
  H.L3 = {"L3", 16384, 8, 64, 40};
  H.DramLatency = 200;
  return H;
}

} // namespace

TEST(Hierarchy, LevelsAndLatencies) {
  MemoryHierarchy H(smallHierarchy());
  AccessResult First = H.access(0, 8, false, 1);
  EXPECT_EQ(First.Served, MemLevel::Dram);
  EXPECT_EQ(First.Latency, 200u);
  AccessResult Second = H.access(0, 8, false, 1);
  EXPECT_EQ(Second.Served, MemLevel::L1);
  EXPECT_EQ(Second.Latency, 4u);
}

TEST(Hierarchy, L2ServesAfterL1Eviction) {
  MemoryHierarchy H(smallHierarchy());
  H.access(0, 8, false, 1);
  // Evict line 0 from L1 (16 lines) but not L2 (64 lines): touch 16
  // conflicting-ish lines.
  for (uint64_t L = 1; L <= 32; ++L)
    H.access(L * 64, 8, false, 1);
  AccessResult R = H.access(0, 8, false, 1);
  EXPECT_EQ(R.Served, MemLevel::L2);
  EXPECT_EQ(R.Latency, 12u);
}

TEST(Hierarchy, LineStraddleTakesSlowerLine) {
  MemoryHierarchy H(smallHierarchy());
  H.access(0, 8, false, 1); // Line 0 cached everywhere.
  // 8 bytes at offset 60: touches lines 0 (hit) and 1 (cold -> DRAM).
  AccessResult R = H.access(60, 8, false, 2);
  EXPECT_EQ(R.Served, MemLevel::Dram);
  EXPECT_EQ(R.Latency, 200u);
}

TEST(Hierarchy, SharedL3AcrossCores) {
  HierarchyConfig Cfg = smallHierarchy();
  SetAssocCache SharedL3(Cfg.L3);
  MemoryHierarchy Core0(Cfg, &SharedL3);
  MemoryHierarchy Core1(Cfg, &SharedL3);
  Core0.access(0, 8, false, 1); // Fills the shared L3.
  AccessResult R = Core1.access(0, 8, false, 1);
  EXPECT_EQ(R.Served, MemLevel::L3); // Private L1/L2 cold, L3 warm.
  EXPECT_EQ(SharedL3.getAccesses(), 2u);
}

TEST(Hierarchy, MissCountersPerLevel) {
  MemoryHierarchy H(smallHierarchy());
  H.access(0, 8, false, 1);
  H.access(0, 8, false, 1);
  EXPECT_EQ(H.l1().getMisses(), 1u);
  EXPECT_EQ(H.l1().getHits(), 1u);
  EXPECT_EQ(H.l2().getMisses(), 1u);
  EXPECT_EQ(H.l3().getMisses(), 1u);
  H.resetCounters();
  EXPECT_EQ(H.l1().getAccesses(), 0u);
}

TEST(Hierarchy, MemLevelNames) {
  EXPECT_STREQ(memLevelName(MemLevel::L1), "L1");
  EXPECT_STREQ(memLevelName(MemLevel::L2), "L2");
  EXPECT_STREQ(memLevelName(MemLevel::L3), "L3");
  EXPECT_STREQ(memLevelName(MemLevel::Dram), "DRAM");
}

// --- StridePrefetcher --------------------------------------------------------

TEST(Prefetcher, DetectsConstantStride) {
  HierarchyConfig Cfg = smallHierarchy();
  Cfg.EnablePrefetcher = true;
  Cfg.PrefetchDegree = 2;
  MemoryHierarchy H(Cfg);
  // Stride-64 stream from one IP: after warmup, upcoming lines are
  // prefetched into L2.
  for (uint64_t I = 0; I != 8; ++I)
    H.access(I * 64, 8, false, /*Ip=*/7);
  EXPECT_GT(H.getPrefetcher().getIssued(), 0u);
  // The next line should now be at least L2-resident.
  AccessResult R = H.access(8 * 64, 8, false, 7);
  EXPECT_NE(R.Served, MemLevel::Dram);
}

TEST(Prefetcher, IndexUsesFullHashWidth) {
  // Regression: the table index used to be (hash >> 56) & (N-1), which
  // keeps only the top 8 hash bits — any table beyond 256 entries left
  // the extra slots unreachable. The index must come from the top
  // log2(N) bits of the full-width hash.
  std::set<size_t> Used;
  for (uint64_t Ip = 0; Ip != 8192; ++Ip)
    Used.insert(StridePrefetcher::indexFor(0x400000 + Ip * 4, 4096));
  EXPECT_GT(Used.size(), 256u);
  for (size_t Slot : Used)
    EXPECT_LT(Slot, 4096u);

  // The default 256-entry geometry keeps its historical mapping (the
  // top-8-bit index), so existing profiles stay bit-identical.
  for (uint64_t Ip : {0x400000ull, 0x400004ull, 0x7fffffull, 1ull})
    EXPECT_EQ(StridePrefetcher::indexFor(Ip, 256),
              (Ip * 0x9e3779b97f4a7c15ULL) >> 56);

  // Degenerate single-entry table maps everything to slot 0.
  EXPECT_EQ(StridePrefetcher::indexFor(0x1234, 1), 0u);
}

TEST(Prefetcher, TableSizeConfigurableAndRoundedToPowerOfTwo) {
  StridePrefetcher P(1024);
  EXPECT_EQ(P.getNumEntries(), 1024u);
  StridePrefetcher Rounded(300);
  EXPECT_EQ(Rounded.getNumEntries(), 512u);
  HierarchyConfig Cfg = smallHierarchy();
  Cfg.EnablePrefetcher = true;
  Cfg.PrefetchTableEntries = 2048;
  MemoryHierarchy H(Cfg);
  EXPECT_EQ(H.getPrefetcher().getNumEntries(), 2048u);
  // Larger tables still detect streams.
  for (uint64_t I = 0; I != 8; ++I)
    H.access(I * 64, 8, false, /*Ip=*/7);
  EXPECT_GT(H.getPrefetcher().getIssued(), 0u);
}

TEST(Prefetcher, NoIssueForRandomPattern) {
  HierarchyConfig Cfg = smallHierarchy();
  Cfg.EnablePrefetcher = true;
  MemoryHierarchy H(Cfg);
  Rng R(3);
  for (int I = 0; I != 64; ++I)
    H.access(R.nextBelow(1 << 20), 8, false, 7);
  // A couple of accidental matches are possible, but not a stream.
  EXPECT_LT(H.getPrefetcher().getIssued(), 8u);
}

TEST(Prefetcher, DisabledByDefault) {
  MemoryHierarchy H(smallHierarchy());
  for (uint64_t I = 0; I != 16; ++I)
    H.access(I * 64, 8, false, 7);
  EXPECT_EQ(H.getPrefetcher().getIssued(), 0u);
  EXPECT_EQ(H.l2().getPrefetchFills(), 0u);
}

TEST(Prefetcher, NonUnitStrideRecognized) {
  // The paper notes hardware prefetchers recognize non-unit strides;
  // ours does too (per-IP stride table).
  HierarchyConfig Cfg = smallHierarchy();
  Cfg.EnablePrefetcher = true;
  MemoryHierarchy H(Cfg);
  for (uint64_t I = 0; I != 8; ++I)
    H.access(I * 256, 8, false, 9);
  EXPECT_GT(H.getPrefetcher().getIssued(), 0u);
}
