//===- tests/profilebuilder_test.cpp - Online attribution ------*- C++ -*-===//

#include "analysis/CodeMap.h"
#include "ir/ProgramBuilder.h"
#include "mem/DataObjectTable.h"
#include "runtime/ProfileBuilder.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::runtime;
using structslim::ir::Reg;

namespace {

/// Fixture: a program with one loop (the stream site) and one
/// straight-line load, plus an object table with one array.
class ProfileBuilderTest : public ::testing::Test {
protected:
  void SetUp() override {
    ir::Function &F = P.addFunction("main", 0);
    ir::ProgramBuilder B(P, F);
    B.setLine(5);
    B.work(0);
    StraightIp = F.Blocks[0]->Instrs.back().Ip;
    B.forLoopI(0, 4, 1, [&](Reg) {
      B.setLine(6);
      B.work(0);
      LoopIp = F.Blocks[B.currentBlock()]->Instrs.back().Ip;
      B.work(0);
      LoopIp2 = F.Blocks[B.currentBlock()]->Instrs.back().Ip;
      B.setLine(5);
    });
    B.ret();
    Map = std::make_unique<analysis::CodeMap>(P);
    Objects.addHeap("arr", ArrStart, 64 * 100, {});
    Builder = std::make_unique<ProfileBuilder>(*Map, Objects, /*Tid=*/0,
                                               /*Period=*/10000);
  }

  pmu::AddressSample sample(uint64_t Ip, uint64_t Addr, uint32_t Latency,
                            cache::MemLevel Served = cache::MemLevel::L3) {
    pmu::AddressSample S;
    S.Ip = Ip;
    S.EffAddr = Addr;
    S.Latency = Latency;
    S.AccessSize = 8;
    S.Served = Served;
    return S;
  }

  static constexpr uint64_t ArrStart = 0x10000;
  ir::Program P;
  uint64_t StraightIp = 0, LoopIp = 0, LoopIp2 = 0;
  std::unique_ptr<analysis::CodeMap> Map;
  mem::DataObjectTable Objects;
  std::unique_ptr<ProfileBuilder> Builder;
};

} // namespace

TEST_F(ProfileBuilderTest, AttributesToObjectAndStream) {
  Builder->onSample(sample(LoopIp, ArrStart + 64, 40));
  Builder->onSample(sample(LoopIp, ArrStart + 192, 40));
  profile::Profile Prof = Builder->take();
  EXPECT_EQ(Prof.TotalSamples, 2u);
  EXPECT_EQ(Prof.TotalLatency, 80u);
  ASSERT_EQ(Prof.Objects.size(), 1u);
  EXPECT_EQ(Prof.Objects[0].Name, "arr");
  ASSERT_EQ(Prof.Streams.size(), 1u);
  const profile::StreamRecord &S = Prof.Streams[0];
  EXPECT_EQ(S.SampleCount, 2u);
  EXPECT_EQ(S.UniqueAddrCount, 2u);
  EXPECT_EQ(S.StrideGcd, 128u);
  EXPECT_EQ(S.RepAddr, ArrStart + 64);
  EXPECT_EQ(S.ObjectStart, ArrStart);
  EXPECT_EQ(S.Line, 6u);
  EXPECT_GE(S.LoopId, 0);
}

TEST_F(ProfileBuilderTest, GcdRefinesWithMoreSamples) {
  // Addresses at element offsets 2, 5, 7 of a 64-byte struct (paper's
  // Sec. 4.2.2 example): gcd(192, 128) = 64.
  Builder->onSample(sample(LoopIp, ArrStart + 2 * 64, 40));
  Builder->onSample(sample(LoopIp, ArrStart + 5 * 64, 40));
  Builder->onSample(sample(LoopIp, ArrStart + 7 * 64, 40));
  profile::Profile Prof = Builder->take();
  EXPECT_EQ(Prof.Streams[0].StrideGcd, 64u);
  EXPECT_EQ(Prof.Streams[0].UniqueAddrCount, 3u);
}

TEST_F(ProfileBuilderTest, DuplicateAddressesIgnoredForStride) {
  Builder->onSample(sample(LoopIp, ArrStart + 128, 40));
  Builder->onSample(sample(LoopIp, ArrStart + 128, 40)); // Duplicate.
  Builder->onSample(sample(LoopIp, ArrStart + 256, 40));
  profile::Profile Prof = Builder->take();
  const profile::StreamRecord &S = Prof.Streams[0];
  EXPECT_EQ(S.SampleCount, 3u); // Latency still counted.
  EXPECT_EQ(S.UniqueAddrCount, 2u);
  EXPECT_EQ(S.StrideGcd, 128u);
}

TEST_F(ProfileBuilderTest, SamplesOutsideLoopsAreNotStreams) {
  Builder->onSample(sample(StraightIp, ArrStart + 64, 40));
  profile::Profile Prof = Builder->take();
  EXPECT_EQ(Prof.TotalSamples, 1u);
  ASSERT_EQ(Prof.Objects.size(), 1u);
  EXPECT_EQ(Prof.Objects[0].LatencySum, 40u); // Object totals do count.
  EXPECT_TRUE(Prof.Streams.empty());          // No stream outside loops.
}

TEST_F(ProfileBuilderTest, UnattributedAddresses) {
  Builder->onSample(sample(LoopIp, 0xdead0000, 25));
  profile::Profile Prof = Builder->take();
  EXPECT_EQ(Prof.TotalSamples, 1u);
  EXPECT_EQ(Prof.TotalLatency, 25u);
  EXPECT_EQ(Prof.UnattributedLatency, 25u);
  EXPECT_TRUE(Prof.Objects.empty());
}

TEST_F(ProfileBuilderTest, TwoInstructionsTwoStreams) {
  Builder->onSample(sample(LoopIp, ArrStart + 0, 40));
  Builder->onSample(sample(LoopIp2, ArrStart + 8, 40));
  profile::Profile Prof = Builder->take();
  EXPECT_EQ(Prof.Streams.size(), 2u);
}

TEST_F(ProfileBuilderTest, LevelCountsTrackServedLevel) {
  Builder->onSample(sample(LoopIp, ArrStart, 4, cache::MemLevel::L1));
  Builder->onSample(sample(LoopIp, ArrStart + 64, 12, cache::MemLevel::L2));
  Builder->onSample(sample(LoopIp, ArrStart + 128, 200,
                           cache::MemLevel::Dram));
  profile::Profile Prof = Builder->take();
  const auto &Levels = Prof.Streams[0].LevelSamples;
  EXPECT_EQ(Levels[0], 1u);
  EXPECT_EQ(Levels[1], 1u);
  EXPECT_EQ(Levels[2], 0u);
  EXPECT_EQ(Levels[3], 1u);
}

TEST_F(ProfileBuilderTest, ReallocationResetsAddressTracking) {
  Builder->onSample(sample(LoopIp, ArrStart + 64, 40));
  Builder->onSample(sample(LoopIp, ArrStart + 192, 40));
  // The object is freed and a new instance appears elsewhere; the
  // allocation site (key) is the same.
  Objects.release(ArrStart);
  uint64_t NewStart = 0x50000;
  Objects.addHeap("arr", NewStart, 64 * 100, {});
  Builder->onSample(sample(LoopIp, NewStart + 3, 40));
  Builder->onSample(sample(LoopIp, NewStart + 131, 40));
  profile::Profile Prof = Builder->take();
  ASSERT_EQ(Prof.Streams.size(), 1u);
  const profile::StreamRecord &S = Prof.Streams[0];
  // Stride derives from within-instance differences only: gcd(128) from
  // each instance, never |NewStart+3 - (ArrStart+192)|.
  EXPECT_EQ(S.StrideGcd, 128u);
  EXPECT_EQ(S.ObjectStart, NewStart);
  EXPECT_EQ(S.RepAddr, NewStart + 3);
}

TEST_F(ProfileBuilderTest, AccessSizeTracksWidest) {
  auto S1 = sample(LoopIp, ArrStart, 40);
  S1.AccessSize = 4;
  Builder->onSample(S1);
  auto S2 = sample(LoopIp, ArrStart + 64, 40);
  S2.AccessSize = 8;
  Builder->onSample(S2);
  profile::Profile Prof = Builder->take();
  EXPECT_EQ(Prof.Streams[0].AccessSize, 8u);
}
