//===- tests/analyzer_incremental_test.cpp - Warm re-analysis --*- C++ -*-===//
//
// The incremental result cache: a warm analyze() over an evolved
// profile re-runs analyzeObject only for objects whose content hash
// changed, and every rendered surface stays byte-identical to a cold
// run on a fresh analyzer — the cache is an acceleration structure,
// never an output. Also pins the invalidation rules (registerLayout
// clears the cache; --no-incremental bypasses it) and the reuse
// counter the report tool and benchmarks read.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "core/Report.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;
using structslim::profile::Profile;
using structslim::profile::StreamRecord;

namespace {

/// Builds a randomized many-object profile (seeded, reproducible).
Profile makeRandomProfile(uint64_t Seed) {
  Rng R(Seed);
  Profile Prof;
  Prof.SamplePeriod = 10000;
  unsigned NumObjects = 4 + static_cast<unsigned>(R.nextBelow(12));
  for (unsigned Obj = 0; Obj != NumObjects; ++Obj) {
    std::string Name = "obj" + std::to_string(Obj);
    uint32_t Idx = Prof.getOrCreateObject(Name);
    uint64_t Start = 0x10000 * (Obj + 1);
    profile::ObjectAgg &Agg = Prof.Objects[Idx];
    Agg.Name = Name;
    Agg.Start = Start;
    Agg.Size = 1 << 20;
    unsigned NumStreams = 2 + static_cast<unsigned>(R.nextBelow(20));
    for (unsigned S = 0; S != NumStreams; ++S) {
      uint64_t Latency = 1 + R.nextBelow(1000);
      Agg.SampleCount += 1;
      Agg.LatencySum += Latency;
      Prof.TotalSamples += 1;
      Prof.TotalLatency += Latency;
      StreamRecord &Rec =
          Prof.getOrCreateStream(/*Ip=*/(Obj << 16) | S, Idx);
      Rec.LoopId = static_cast<int32_t>(R.nextBelow(8)) - 1;
      Rec.AccessSize = 8;
      Rec.SampleCount += 1;
      Rec.LatencySum += Latency;
      Rec.UniqueAddrCount = 1 + R.nextBelow(20);
      Rec.StrideGcd = 8ull << R.nextBelow(5);
      Rec.ObjectStart = Start;
      Rec.RepAddr = Start + R.nextBelow(4096);
    }
  }
  return Prof;
}

/// Adds latency mass to one stream of \p ObjName — the "this object
/// changed in the next epoch" mutation — keeping aggregates coherent.
void touchObject(Profile &Prof, const std::string &ObjName) {
  for (size_t I = 0; I != Prof.Objects.size(); ++I) {
    if (Prof.Objects[I].Name != ObjName)
      continue;
    for (StreamRecord &Rec : Prof.Streams) {
      if (Rec.ObjectIndex != static_cast<uint32_t>(I))
        continue;
      Rec.SampleCount += 1;
      Rec.LatencySum += 500;
      Prof.Objects[I].SampleCount += 1;
      Prof.Objects[I].LatencySum += 500;
      Prof.TotalSamples += 1;
      Prof.TotalLatency += 500;
      return;
    }
  }
  FAIL() << "object not found: " << ObjName;
}

/// Analyze everything: no share filter, no top-N cut, so the cache
/// coverage is exactly the object set and reuse counts are exact.
AnalysisConfig wideConfig(unsigned Jobs = 1, bool Incremental = true) {
  AnalysisConfig Config;
  Config.TopObjects = 1000;
  Config.MinObjectShare = 0;
  Config.Jobs = Jobs;
  Config.Incremental = Incremental;
  return Config;
}

/// Renders every output surface of the analysis into one string.
std::string renderEverything(const AnalysisResult &Result,
                             const Profile &Prof,
                             const AnalysisConfig &Config) {
  std::string Out = renderHotObjects(Result);
  for (const ObjectAnalysis &O : Result.Objects) {
    Out += renderFieldTable(O);
    Out += renderFieldLevelTable(O);
    Out += renderLoopTable(O);
    Out += renderAffinityMatrix(O);
    Out += renderAdviceText(makeSplitPlan(O), O);
    Out += affinityGraphDot(O);
  }
  Out += renderJsonReport(Result, Prof, Config, ReportStats(), {});
  return Out;
}

} // namespace

// A warm re-analysis of the SAME profile reuses every object and is
// byte-identical to the cold run that seeded the cache.
TEST(AnalyzerIncremental, IdenticalProfileReusesEveryObject) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    Profile Prof = makeRandomProfile(Seed);
    AnalysisConfig Config = wideConfig();
    StructSlimAnalyzer Analyzer(Config);
    AnalysisResult Cold = Analyzer.analyze(Prof);
    AnalysisResult Warm = Analyzer.analyze(Prof);
    EXPECT_EQ(Cold.Stats.ObjectsReused, 0u) << "seed " << Seed;
    EXPECT_EQ(Warm.Stats.ObjectsReused, Cold.Objects.size())
        << "seed " << Seed;
    EXPECT_EQ(renderEverything(Warm, Prof, Config),
              renderEverything(Cold, Prof, Config))
        << "seed " << Seed;
  }
}

// An evolved profile re-analyzes only the changed object; the warm
// result is byte-identical to a cold analyzer seeing the evolved
// profile for the first time. HotShare legitimately shifts for every
// object (the denominator changed) — the cache must not fossilize it.
TEST(AnalyzerIncremental, EvolvedProfileReanalyzesOnlyChangedObjects) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    Profile Epoch1 = makeRandomProfile(Seed);
    Profile Epoch2 = makeRandomProfile(Seed);
    touchObject(Epoch2, "obj1");

    AnalysisConfig Config = wideConfig();
    StructSlimAnalyzer Warm(Config);
    Warm.analyze(Epoch1);
    AnalysisResult WarmResult = Warm.analyze(Epoch2);
    EXPECT_EQ(WarmResult.Stats.ObjectsReused, WarmResult.Objects.size() - 1)
        << "seed " << Seed;

    StructSlimAnalyzer Cold(Config);
    AnalysisResult ColdResult = Cold.analyze(Epoch2);
    EXPECT_EQ(ColdResult.Stats.ObjectsReused, 0u);
    EXPECT_EQ(renderEverything(WarmResult, Epoch2, Config),
              renderEverything(ColdResult, Epoch2, Config))
        << "seed " << Seed;
  }
}

// Warm identity holds for any job count and any epoch schedule: serial
// and parallel warm runs over a chain of evolving profiles all match
// the cold oracle at every step.
TEST(AnalyzerIncremental, EpochSchedulesMatchColdAtEveryJobCount) {
  for (unsigned Jobs : {1u, 4u}) {
    Profile Prof = makeRandomProfile(77);
    AnalysisConfig Config = wideConfig(Jobs);
    StructSlimAnalyzer Warm(Config);
    const char *Touches[] = {"obj0", "obj2", "obj0", "obj3"};
    for (const char *Touch : Touches) {
      AnalysisResult WarmResult = Warm.analyze(Prof);
      AnalysisResult ColdResult = StructSlimAnalyzer(Config).analyze(Prof);
      EXPECT_EQ(renderEverything(WarmResult, Prof, Config),
                renderEverything(ColdResult, Prof, Config))
          << "jobs=" << Jobs << " before touching " << Touch;
      touchObject(Prof, Touch);
    }
  }
}

// Incremental=false is the always-recompute oracle: nothing is ever
// reused, and the bytes match the incremental path exactly.
TEST(AnalyzerIncremental, NoIncrementalDisablesReuseNotOutput) {
  Profile Prof = makeRandomProfile(5);
  AnalysisConfig On = wideConfig(1, true);
  AnalysisConfig Off = wideConfig(1, false);
  StructSlimAnalyzer WithCache(On);
  StructSlimAnalyzer WithoutCache(Off);
  WithCache.analyze(Prof);
  WithoutCache.analyze(Prof);
  AnalysisResult Cached = WithCache.analyze(Prof);
  AnalysisResult Uncached = WithoutCache.analyze(Prof);
  EXPECT_GT(Cached.Stats.ObjectsReused, 0u);
  EXPECT_EQ(Uncached.Stats.ObjectsReused, 0u);
  // The reuse counter is not a rendered surface; everything else must
  // agree (modulo the config block's own incremental flag — compare
  // the non-JSON surfaces and the result structures directly).
  ASSERT_EQ(Cached.Objects.size(), Uncached.Objects.size());
  EXPECT_EQ(renderHotObjects(Cached), renderHotObjects(Uncached));
  for (size_t I = 0; I != Cached.Objects.size(); ++I) {
    EXPECT_EQ(renderFieldTable(Cached.Objects[I]),
              renderFieldTable(Uncached.Objects[I]));
    EXPECT_EQ(Cached.Objects[I].Affinity, Uncached.Objects[I].Affinity);
    EXPECT_EQ(Cached.Objects[I].Clusters, Uncached.Objects[I].Clusters);
  }
}

// registerLayout invalidates the cache: cached analyses may carry field
// names from the previous layout set, so the next run recomputes from
// scratch — and matches a fresh analyzer given the same layout.
TEST(AnalyzerIncremental, RegisterLayoutInvalidatesTheCache) {
  Profile Prof = makeRandomProfile(9);
  AnalysisConfig Config = wideConfig();
  ir::StructLayout Layout("node");
  Layout.addField("weight", 8, 8);
  Layout.addField("next", 8, 8);

  StructSlimAnalyzer Warm(Config);
  Warm.analyze(Prof);
  Warm.registerLayout("obj0", Layout);
  AnalysisResult AfterLayout = Warm.analyze(Prof);
  EXPECT_EQ(AfterLayout.Stats.ObjectsReused, 0u);

  StructSlimAnalyzer Cold(Config);
  Cold.registerLayout("obj0", Layout);
  AnalysisResult ColdResult = Cold.analyze(Prof);
  EXPECT_EQ(renderEverything(AfterLayout, Prof, Config),
            renderEverything(ColdResult, Prof, Config));
}
