//===- tests/closedloop_test.cpp - Closed-loop verifier --------*- C++ -*-===//
//
// The advice -> automatic split -> re-simulate loop (core/ClosedLoop):
//  - a serial workload takes the IR-split path, keeps its results, and
//    does not regress modeled latency,
//  - a parallel workload is rejected by the splitter (published base
//    pointer) and falls back to the FieldMap rebuild, with the
//    splitter's diagnostic preserved,
//  - verdicts and their JSON rendering are byte-identical for any
//    merge/analyzer job count,
//  - the BenefitModel's prediction and the measured speedup agree in
//    direction (both > 1 when the split helps).
//
//===----------------------------------------------------------------------===//

#include "core/ClosedLoop.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;

namespace {

ClosedLoopConfig testConfig(unsigned Jobs = 0) {
  ClosedLoopConfig Config;
  Config.Driver.Scale = 0.1;
  Config.Driver.WorkerThreads = Jobs;
  Config.Driver.Analysis.Jobs = Jobs;
  return Config;
}

} // namespace

TEST(ClosedLoop, SerialWorkloadTakesIrSplitPath) {
  WorkloadVerdict V = verifyWorkload(*workloads::makeArt(), testConfig());
  EXPECT_EQ(V.Name, "179.ART");
  EXPECT_EQ(V.Mode, ApplyMode::IrSplit);
  EXPECT_TRUE(V.FallbackReason.empty()) << V.FallbackReason;
  EXPECT_TRUE(V.Plan.isSplit());
  EXPECT_TRUE(V.ResultsMatch);
  EXPECT_FALSE(V.regressed());
  EXPECT_TRUE(V.improved());
  EXPECT_TRUE(V.ok());
  // Sampled-vs-exact agreement: the analyzer recovered f1_neuron's
  // 64-byte size from PMU samples alone.
  EXPECT_TRUE(V.sizeExact());
  EXPECT_EQ(V.ActualStructSize, 64u);
  EXPECT_GT(V.Samples, 0u);
  EXPECT_GT(V.HotShare, 0.5);
  // The transformed program did real work under the same config.
  EXPECT_GT(V.After.Instructions, 0u);
  EXPECT_GT(V.After.MemoryAccesses, 0u);
  EXPECT_LT(V.After.ElapsedCycles, V.Before.ElapsedCycles);
  // Splitting removes L1 misses on the hot sweep.
  EXPECT_GT(V.MissRateReduction[0], 0.0);
}

TEST(ClosedLoop, ParallelWorkloadFallsBackToFieldMapRebuild) {
  WorkloadVerdict V = verifyWorkload(*workloads::makeClomp(), testConfig());
  EXPECT_EQ(V.Mode, ApplyMode::FieldMapRebuild);
  // The splitter must refuse the published base pointer — rewriting
  // only the allocating function would silently break the workers.
  EXPECT_NE(V.FallbackReason.find("escapes"), std::string::npos)
      << V.FallbackReason;
  EXPECT_TRUE(V.Plan.isSplit());
  EXPECT_TRUE(V.ResultsMatch);
  EXPECT_FALSE(V.regressed());
  EXPECT_TRUE(V.ok());
}

TEST(ClosedLoop, PredictionAndMeasurementAgreeInDirection) {
  WorkloadVerdict V = verifyWorkload(*workloads::makeArt(), testConfig());
  EXPECT_GT(V.PredictedSpeedup, 1.0);
  EXPECT_GT(V.MeasuredSpeedup, 1.0);
}

TEST(ClosedLoop, VerdictsAreIdenticalForAnyJobCount) {
  std::vector<std::unique_ptr<workloads::Workload>> Ws;
  Ws.push_back(workloads::makeArt());
  Ws.push_back(workloads::makeClomp());
  VerifyReport One = verifyWorkloads(Ws, testConfig(/*Jobs=*/1));
  VerifyReport Four = verifyWorkloads(Ws, testConfig(/*Jobs=*/4));
  EXPECT_EQ(renderVerifyJson(One, testConfig(1)),
            renderVerifyJson(Four, testConfig(4)));
  EXPECT_EQ(renderVerifyText(One), renderVerifyText(Four));
}

TEST(ClosedLoop, ReportAggregatesAndRendersBothForms) {
  std::vector<std::unique_ptr<workloads::Workload>> Ws;
  Ws.push_back(workloads::makeArt());
  Ws.push_back(workloads::makeClomp());
  ClosedLoopConfig Config = testConfig();
  VerifyReport Report = verifyWorkloads(Ws, Config);
  ASSERT_EQ(Report.Workloads.size(), 2u);
  EXPECT_EQ(Report.countMode(ApplyMode::IrSplit), 1u);
  EXPECT_EQ(Report.countMode(ApplyMode::FieldMapRebuild), 1u);
  EXPECT_EQ(Report.countMode(ApplyMode::None), 0u);
  EXPECT_EQ(Report.countRegressed(), 0u);
  EXPECT_EQ(Report.countMismatched(), 0u);
  EXPECT_TRUE(Report.allOk());

  std::string Text = renderVerifyText(Report);
  EXPECT_NE(Text.find("179.ART"), std::string::npos);
  EXPECT_NE(Text.find("ir-split"), std::string::npos);
  EXPECT_NE(Text.find("fieldmap-rebuild"), std::string::npos);
  EXPECT_NE(Text.find("0 regressed"), std::string::npos);

  std::string Json = renderVerifyJson(Report, Config);
  EXPECT_EQ(Json.rfind('{', 0), 0u);
  for (const char *Key :
       {"\"schema_version\": 1", "\"generator\": \"structslim-verify\"",
        "\"mode\": \"ir-split\"", "\"mode\": \"fieldmap-rebuild\"",
        "\"plan\":", "\"clusters\":", "\"agreement\":", "\"before\":",
        "\"after\":", "\"delta\":", "\"measured_speedup\":",
        "\"predicted_speedup\":", "\"miss_rate_reduction\":",
        "\"all_ok\": true"})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
}

TEST(ClosedLoop, ApplyModeNamesAreStable) {
  EXPECT_STREQ(applyModeName(ApplyMode::None), "none");
  EXPECT_STREQ(applyModeName(ApplyMode::IrSplit), "ir-split");
  EXPECT_STREQ(applyModeName(ApplyMode::FieldMapRebuild),
               "fieldmap-rebuild");
}

TEST(ClosedLoop, MissRateGuardsEmptyLevels) {
  SimCounters C;
  EXPECT_EQ(C.missRate(0), 0.0);
  EXPECT_EQ(C.missRate(7), 0.0); // Out-of-range level.
  C.Accesses[1] = 100;
  C.Misses[1] = 25;
  EXPECT_DOUBLE_EQ(C.missRate(1), 0.25);
}
