//===- tests/accuracy_test.cpp - Eq. 4 accuracy model tests ----*- C++ -*-===//

#include "core/AccuracyModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace structslim;
using namespace structslim::core;

TEST(Accuracy, PaperClaimKTenExceeds99Percent) {
  // "if k is larger than 10, the accuracy can be higher than 99%."
  for (uint64_t N : {1000ull, 10000ull, 100000ull}) {
    EXPECT_GT(eq4Accuracy(N, 10), 0.99) << "n = " << N;
    EXPECT_GT(exactAccuracy(N, 10), 0.99) << "n = " << N;
  }
  EXPECT_GT(eq4LowerBound(10), 0.99);
}

TEST(Accuracy, MonotonicInK) {
  double Prev = 0.0;
  for (uint64_t K = 2; K <= 16; ++K) {
    double A = eq4Accuracy(10000, K);
    EXPECT_GE(A, Prev - 1e-12) << "k = " << K;
    Prev = A;
  }
}

TEST(Accuracy, SmallKIsInaccurate) {
  // With two samples the failure probability is substantial (~ sum of
  // 1/p over small primes' effect).
  EXPECT_LT(eq4Accuracy(10000, 2), 0.65);
  EXPECT_LT(exactAccuracy(10000, 2), 0.65);
}

TEST(Accuracy, BoundsOrdering) {
  // The closed-form bound understates the Eq. 4 value, which itself
  // overstates the residue-exact accuracy (Eq. 4 counts only the
  // multiples-of-p failure class).
  for (uint64_t K : {3ull, 5ull, 8ull, 12ull}) {
    double Bound = eq4LowerBound(K);
    double Paper = eq4Accuracy(100000, K);
    double Exact = exactAccuracy(100000, K);
    EXPECT_LE(Bound, Paper + 1e-9) << "k = " << K;
    EXPECT_LE(Exact, Paper + 1e-9) << "k = " << K;
  }
}

TEST(Accuracy, ExactHandlesTinyN) {
  // All C(n,k) mass enumerable by hand: n=4, k=2 -> subsets {0..3}
  // choose 2 = 6; same-residue-mod-2 pairs: {0,2},{1,3} -> 2; mod 3:
  // {0,3} -> 1. exact = 1 - 3/6 = 0.5.
  EXPECT_NEAR(exactAccuracy(4, 2), 0.5, 1e-9);
}

TEST(Accuracy, Eq4TinyN) {
  // Eq. 4 as printed: subtract C(2,2)/C(4,2) for p=2 (multiples {0,2})
  // and C(1,2)=0 for p=3: 1 - 1/6.
  EXPECT_NEAR(eq4Accuracy(4, 2), 1.0 - 1.0 / 6.0, 1e-9);
}

// Monte Carlo ground truth matches the residue-exact model across k,
// for unit and non-unit real strides (the GCD is stride-scale
// invariant).
struct AccuracyCase {
  uint64_t N;
  uint64_t K;
  uint64_t StrideR;
};

class AccuracyMonteCarlo : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(AccuracyMonteCarlo, MeasuredMatchesExactModel) {
  const AccuracyCase &C = GetParam();
  Rng R(0xACC + C.K * 131 + C.StrideR);
  double Measured = measureAccuracy(C.N, C.K, C.StrideR, 4000, R);
  double Model = exactAccuracy(C.N, C.K);
  // 4000 trials: allow ~3 sigma of binomial noise plus model slack for
  // the ignored inclusion-exclusion terms.
  double Sigma = std::sqrt(Model * (1 - Model) / 4000) * 3 + 0.01;
  EXPECT_NEAR(Measured, Model, Sigma)
      << "n=" << C.N << " k=" << C.K << " stride=" << C.StrideR;
}

// The models drop the inclusion-exclusion terms across primes, which
// only vanish for k >= 4; the sweep starts there (see the small-k
// breakdown test below).
INSTANTIATE_TEST_SUITE_P(
    Sweep, AccuracyMonteCarlo,
    ::testing::Values(AccuracyCase{1000, 4, 1}, AccuracyCase{1000, 6, 1},
                      AccuracyCase{1000, 8, 1}, AccuracyCase{1000, 10, 1},
                      AccuracyCase{1000, 12, 1}, AccuracyCase{5000, 5, 1},
                      AccuracyCase{5000, 10, 1}, AccuracyCase{1000, 4, 64},
                      AccuracyCase{1000, 8, 64}, AccuracyCase{1000, 6, 56},
                      AccuracyCase{1000, 10, 16}));

TEST(Accuracy, SmallKFormulaBreaksDown) {
  // With k = 2 the computed stride equals the single address
  // difference, so the true accuracy is ~2/n — while Eq. 4's
  // independence-style counting still reports ~0.5. The formula (and
  // the paper's claim) is only meaningful for larger k; this test
  // documents the gap.
  Rng R(77);
  double Measured = measureAccuracy(1000, 2, 1, 4000, R);
  EXPECT_LT(Measured, 0.02);
  EXPECT_GT(eq4Accuracy(1000, 2), 0.3);
}

TEST(Accuracy, StrideScaleInvariance) {
  // Recovering stride 64 from n positions is exactly as hard as
  // recovering stride 1: measured accuracies agree within noise.
  Rng R1(1), R2(1);
  double Unit = measureAccuracy(2000, 5, 1, 3000, R1);
  double Wide = measureAccuracy(2000, 5, 64, 3000, R2);
  EXPECT_NEAR(Unit, Wide, 0.04);
}
