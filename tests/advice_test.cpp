//===- tests/advice_test.cpp - Split plan & advice rendering ---*- C++ -*-===//

#include "core/Advice.h"
#include "transform/FieldMap.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::core;

namespace {

/// Builds an ObjectAnalysis by hand.
ObjectAnalysis makeAnalysis(
    const std::string &Name, uint64_t StructSize,
    const std::vector<std::pair<uint32_t, uint64_t>> &OffsetLatency,
    const std::vector<std::vector<uint32_t>> &Clusters) {
  ObjectAnalysis O;
  O.Name = Name;
  O.Key = Name;
  O.StructSize = StructSize;
  for (auto [Offset, Latency] : OffsetLatency) {
    FieldStat F;
    F.Offset = Offset;
    F.Name = "off" + std::to_string(Offset);
    F.Size = 8;
    F.LatencySum = Latency;
    O.LatencySum += Latency;
    O.Fields.push_back(F);
  }
  size_t N = O.Fields.size();
  O.Affinity.assign(N, std::vector<double>(N, 0.0));
  for (size_t I = 0; I != N; ++I)
    O.Affinity[I][I] = 1.0;
  O.Clusters = Clusters;
  return O;
}

ir::StructLayout fourFieldLayout() {
  ir::StructLayout L("s");
  L.addField("a", 8);
  L.addField("b", 8);
  L.addField("c", 8);
  L.addField("d", 8);
  L.finalize();
  return L;
}

} // namespace

TEST(SplitPlan, BasicClusters) {
  ObjectAnalysis O =
      makeAnalysis("s", 32, {{0, 100}, {8, 50}, {16, 90}, {24, 40}},
                   {{0, 2}, {1, 3}});
  SplitPlan Plan = makeSplitPlan(O);
  EXPECT_EQ(Plan.ObjectName, "s");
  EXPECT_EQ(Plan.OriginalSize, 32u);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 2u);
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{0, 16}));
  EXPECT_EQ(Plan.ClusterOffsets[1], (std::vector<uint32_t>{8, 24}));
  EXPECT_TRUE(Plan.isSplit());
}

TEST(SplitPlan, SingleClusterIsNotASplit) {
  ObjectAnalysis O = makeAnalysis("s", 16, {{0, 10}, {8, 10}}, {{0, 1}});
  SplitPlan Plan = makeSplitPlan(O);
  EXPECT_FALSE(Plan.isSplit());
}

TEST(SplitPlan, ColdFieldsGetOwnStruct) {
  // Fields a and c observed; b and d never sampled: the layout-aware
  // plan appends {b, d} as a trailing cold structure (like ART's R).
  ObjectAnalysis O = makeAnalysis("s", 32, {{0, 100}, {16, 90}}, {{0, 1}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeSplitPlan(O, &L);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 2u);
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{0, 16}));
  EXPECT_EQ(Plan.ClusterOffsets[1], (std::vector<uint32_t>{8, 24}));
}

TEST(SplitPlan, InnerOffsetsCanonicalizeToFieldOffset) {
  // A 56-byte field sampled at inner offsets 0, 8 and 16 (NN's entry
  // array): all three canonicalize to the field at offset 0, and the
  // dist field at 56 stays separate.
  ir::StructLayout L("neighbor");
  L.addField("entry", 56, 8);
  L.addField("dist", 8);
  L.finalize();
  ObjectAnalysis O = makeAnalysis(
      "neighbor", 64, {{0, 5}, {8, 4}, {16, 3}, {56, 500}},
      {{0, 1, 2}, {3}});
  SplitPlan Plan = makeSplitPlan(O, &L);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 2u);
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(Plan.ClusterOffsets[1], (std::vector<uint32_t>{56}));
}

TEST(SplitPlan, SharedFieldMergesClusters) {
  // Two analysis clusters both touch the wide field at offset 0 (via
  // inner offsets 0 and 8): they must merge in the plan.
  ir::StructLayout L("s");
  L.addField("wide", 16, 8);
  L.addField("x", 8);
  L.finalize();
  ObjectAnalysis O = makeAnalysis("s", 24, {{0, 5}, {8, 5}, {16, 7}},
                                  {{0, 2}, {1}});
  SplitPlan Plan = makeSplitPlan(O, &L);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 1u);
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{0, 16}));
}

TEST(SplitLayouts, FromOriginalLayout) {
  ObjectAnalysis O = makeAnalysis("s", 32, {{0, 100}, {16, 90}}, {{0, 1}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeSplitPlan(O, &L);
  std::vector<ir::StructLayout> Layouts = renderSplitLayouts(Plan, O, &L);
  ASSERT_EQ(Layouts.size(), 2u);
  EXPECT_EQ(Layouts[0].getName(), "s_0");
  ASSERT_EQ(Layouts[0].getNumFields(), 2u);
  EXPECT_EQ(Layouts[0].getField(0).Name, "a");
  EXPECT_EQ(Layouts[0].getField(1).Name, "c");
  EXPECT_EQ(Layouts[0].getSize(), 16u);
  EXPECT_EQ(Layouts[1].getField(0).Name, "b");
  EXPECT_EQ(Layouts[1].getField(1).Name, "d");
}

TEST(SplitLayouts, WithoutOriginalUsesObservedSizes) {
  ObjectAnalysis O = makeAnalysis("s", 32, {{0, 10}, {8, 20}}, {{0}, {1}});
  SplitPlan Plan = makeSplitPlan(O);
  std::vector<ir::StructLayout> Layouts = renderSplitLayouts(Plan, O);
  ASSERT_EQ(Layouts.size(), 2u);
  EXPECT_EQ(Layouts[0].getField(0).Name, "off0");
  EXPECT_EQ(Layouts[0].getField(0).Size, 8u);
}

TEST(AdviceText, MentionsEveryNewStruct) {
  ObjectAnalysis O = makeAnalysis("s", 32, {{0, 100}, {16, 90}}, {{0}, {1}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeSplitPlan(O, &L);
  std::string Text = renderAdviceText(Plan, O, &L);
  EXPECT_NE(Text.find("split 's'"), std::string::npos);
  EXPECT_NE(Text.find("struct s_0"), std::string::npos);
  EXPECT_NE(Text.find("struct s_1"), std::string::npos);
  EXPECT_NE(Text.find("struct s_2"), std::string::npos); // Cold b,d.
}

TEST(AdviceText, NoSplitMessage) {
  ObjectAnalysis O = makeAnalysis("s", 16, {{0, 10}}, {{0}});
  SplitPlan Plan = makeSplitPlan(O);
  std::string Text = renderAdviceText(Plan, O);
  EXPECT_NE(Text.find("No profitable split"), std::string::npos);
}

TEST(ReorderPlan, FlattensClustersHotFirst) {
  // Clusters {a,c} and {b,d} with {a,c} hotter: reorder packs a,c
  // before b,d in ONE structure.
  ObjectAnalysis O =
      makeAnalysis("s", 32, {{0, 100}, {8, 5}, {16, 90}, {24, 5}},
                   {{0, 2}, {1, 3}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeReorderPlan(O, L);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 1u);
  EXPECT_EQ(Plan.ClusterOffsets[0], (std::vector<uint32_t>{0, 16, 8, 24}));
  EXPECT_FALSE(Plan.isSplit());
}

TEST(ReorderPlan, ColdFieldsLast) {
  ObjectAnalysis O = makeAnalysis("s", 32, {{8, 100}}, {{0}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeReorderPlan(O, L);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 1u);
  // Hot b first, cold a/c/d appended.
  EXPECT_EQ(Plan.ClusterOffsets[0],
            (std::vector<uint32_t>{8, 0, 16, 24}));
}

TEST(ReorderPlan, DrivesFieldMapRepacking) {
  ObjectAnalysis O =
      makeAnalysis("s", 32, {{0, 100}, {8, 5}, {16, 90}, {24, 5}},
                   {{0, 2}, {1, 3}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeReorderPlan(O, L);
  transform::FieldMap Map(L, Plan);
  EXPECT_EQ(Map.getNumGroups(), 1u);
  EXPECT_EQ(Map.getGroupSize(0), 32u); // Same size, new order.
  EXPECT_EQ(Map.locate("a").Offset, 0u);
  EXPECT_EQ(Map.locate("c").Offset, 8u);  // c moved next to a.
  EXPECT_EQ(Map.locate("b").Offset, 16u);
  EXPECT_EQ(Map.locate("d").Offset, 24u);
}

TEST(AffinityDot, NodesEdgesAndClusters) {
  ObjectAnalysis O =
      makeAnalysis("s", 32, {{0, 100}, {8, 50}, {16, 90}}, {{0, 2}, {1}});
  O.Affinity[0][2] = O.Affinity[2][0] = 0.86;
  std::string Dot = affinityGraphDot(O);
  EXPECT_NE(Dot.find("graph \"affinity_s\""), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_1"), std::string::npos);
  EXPECT_NE(Dot.find("\"f0\" -- \"f16\" [label=\"0.86\"]"),
            std::string::npos);
  // Zero-affinity pairs draw no edge.
  EXPECT_EQ(Dot.find("\"f0\" -- \"f8\""), std::string::npos);
}

TEST(AffinityDot, ZeroFieldObjectRendersEmptyGraph) {
  ObjectAnalysis O = makeAnalysis("empty", 0, {}, {});
  std::string Dot = affinityGraphDot(O);
  EXPECT_NE(Dot.find("graph \"affinity_empty\""), std::string::npos);
  EXPECT_EQ(Dot.find("--"), std::string::npos);       // No edges.
  EXPECT_EQ(Dot.find("subgraph"), std::string::npos); // No clusters.
  EXPECT_EQ(Dot.find("[label="), std::string::npos);  // No nodes.
}

TEST(AffinityDot, SingleFieldObjectRendersOneNodeNoEdges) {
  ObjectAnalysis O = makeAnalysis("s", 16, {{0, 100}}, {{0}});
  std::string Dot = affinityGraphDot(O);
  EXPECT_NE(Dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(Dot.find("\"f0\" [label=\"off0\"]"), std::string::npos);
  EXPECT_EQ(Dot.find("--"), std::string::npos);
}

TEST(AffinityDot, AllZeroAffinityDrawsNoEdges) {
  ObjectAnalysis O =
      makeAnalysis("s", 32, {{0, 10}, {8, 20}, {16, 30}}, {{0}, {1}, {2}});
  std::string Dot = affinityGraphDot(O);
  // Every field is a node in its own cluster, but no pair connects.
  EXPECT_NE(Dot.find("subgraph cluster_2"), std::string::npos);
  EXPECT_EQ(Dot.find("--"), std::string::npos);
}

TEST(AffinityDot, FieldOutsideEveryClusterStaysTopLevel) {
  // A field no cluster claims (the cold-fields case when clusters come
  // from an external plan) renders at graph top level, outside every
  // subgraph, instead of being dropped or crashing.
  ObjectAnalysis O =
      makeAnalysis("s", 32, {{0, 100}, {8, 50}, {16, 0}}, {{0}, {1}});
  std::string Dot = affinityGraphDot(O);
  size_t Node = Dot.find("\"f16\" [label=\"off16\"]");
  ASSERT_NE(Node, std::string::npos);
  // Top-level nodes print with two-space indentation; clustered ones
  // are nested with four.
  EXPECT_EQ(Dot.compare(Node - 3, 3, "\n  "), 0);
  EXPECT_NE(Dot.find("subgraph cluster_1"), std::string::npos);
}

TEST(AdviceText, ColdTrailingClusterAppearsInDotAdvicePair) {
  // An object whose plan carries a trailing cold cluster: the advice
  // text lists the cold struct last, and the DOT for the analysis
  // clusters still renders the observed fields.
  ObjectAnalysis O = makeAnalysis("s", 32, {{0, 100}, {8, 50}}, {{0}, {1}});
  ir::StructLayout L = fourFieldLayout();
  SplitPlan Plan = makeSplitPlan(O, &L);
  ASSERT_EQ(Plan.ClusterOffsets.size(), 3u); // Hot, warm, cold {c,d}.
  EXPECT_EQ(Plan.ClusterOffsets.back(),
            (std::vector<uint32_t>{16, 24}));
  std::string Text = renderAdviceText(Plan, O, &L);
  EXPECT_NE(Text.find("struct s_2 { long c; long d; };"),
            std::string::npos);
  std::string Dot = affinityGraphDot(O);
  EXPECT_NE(Dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(Dot.find("subgraph cluster_1"), std::string::npos);
}

TEST(AdviceText, LowConfidenceSizeIsSurfaced) {
  ObjectAnalysis O = makeAnalysis("s", 32, {{0, 100}, {8, 50}}, {{0}, {1}});
  O.LowConfidenceSize = true;
  SplitPlan Plan = makeSplitPlan(O);
  std::string Text = renderAdviceText(Plan, O);
  EXPECT_NE(Text.find("(size 32 bytes, low-confidence size)"),
            std::string::npos);
}
