//===- tests/interpreter_test.cpp - IR execution tests ---------*- C++ -*-===//

#include "ir/ProgramBuilder.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::runtime;
using structslim::ir::NoReg;
using structslim::ir::Opcode;
using structslim::ir::ProgramBuilder;
using structslim::ir::Reg;

namespace {

/// Runs main() of \p P on a fresh machine; returns the result.
uint64_t execute(const ir::Program &P, RunStats *Stats = nullptr) {
  EXPECT_EQ(ir::verify(P), "");
  Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  Interpreter I(P, M, H, nullptr, 0);
  uint64_t Result = I.run(P.getEntry(), {});
  if (Stats)
    *Stats = I.getStats();
  return Result;
}

} // namespace

TEST(Interpreter, Arithmetic) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg A = B.constI(20);
  Reg C = B.constI(3);
  Reg Sum = B.add(A, C);       // 23
  Reg Diff = B.sub(Sum, C);    // 20
  Reg Prod = B.mul(Diff, C);   // 60
  Reg Quot = B.div(Prod, C);   // 20
  Reg Rem = B.rem(Quot, C);    // 2
  Reg Sh = B.shl(Rem, C);      // 16
  Reg Final = B.addI(Sh, 1);   // 17
  B.ret(Final);
  EXPECT_EQ(execute(P), 17u);
}

TEST(Interpreter, SignedDivisionAndComparison) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Neg = B.constI(-9);
  Reg Three = B.constI(3);
  Reg Q = B.div(Neg, Three); // -3 signed.
  Reg Lt = B.cmpLt(Q, B.constI(0)); // -3 < 0 -> 1 (signed compare).
  Reg Le = B.cmpLe(B.constI(5), B.constI(5));
  Reg Eq = B.cmpEq(Q, B.constI(-3));
  Reg Ne = B.cmpNe(Q, B.constI(3));
  B.ret(B.add(B.add(Lt, Le), B.add(Eq, Ne))); // 4
  EXPECT_EQ(execute(P), 4u);
}

TEST(Interpreter, BitwiseOps) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg A = B.constI(0b1100);
  Reg C = B.constI(0b1010);
  Reg And = B.band(A, C);            // 0b1000
  Reg Or = B.binop(Opcode::Or, A, C); // 0b1110
  Reg Xor = B.bxor(A, C);            // 0b0110
  Reg Shr = B.shr(Or, B.constI(1));  // 0b0111
  B.ret(B.add(B.add(And, Xor), B.add(Shr, B.andI(A, 0b0100))));
  EXPECT_EQ(execute(P), 8u + 6u + 7u + 4u);
}

TEST(Interpreter, DivisionByZeroAborts) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg A = B.constI(1);
  Reg Z = B.constI(0);
  B.ret(B.div(A, Z));
  EXPECT_DEATH(execute(P), "division by zero");
}

TEST(Interpreter, CountedLoop) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Acc = B.constI(0);
  B.forLoopI(0, 100, 1, [&](Reg I) { B.accumulate(Acc, I); });
  B.ret(Acc);
  EXPECT_EQ(execute(P), 4950u);
}

TEST(Interpreter, LoopWithStep) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Acc = B.constI(0);
  B.forLoopI(0, 10, 3, [&](Reg) { B.accumulate(Acc, B.constI(1)); });
  B.ret(Acc); // Iterations at 0,3,6,9.
  EXPECT_EQ(execute(P), 4u);
}

TEST(Interpreter, EmptyLoopBody) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Acc = B.constI(7);
  B.forLoopI(5, 5, 1, [&](Reg) { B.accumulate(Acc, B.constI(100)); });
  B.ret(Acc); // Zero-trip loop.
  EXPECT_EQ(execute(P), 7u);
}

TEST(Interpreter, IfThenElseBothArms) {
  for (int64_t Cond : {0, 1}) {
    ir::Program P;
    ir::Function &F = P.addFunction("main", 0);
    ProgramBuilder B(P, F);
    Reg Out = B.constI(0);
    Reg C = B.constI(Cond);
    B.ifThenElse(C, [&] { B.moveInto(Out, B.constI(10)); },
                 [&] { B.moveInto(Out, B.constI(20)); });
    B.ret(Out);
    EXPECT_EQ(execute(P), Cond ? 10u : 20u);
  }
}

TEST(Interpreter, MemoryRoundTripWithAddressing) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Bytes = B.constI(1024);
  Reg Base = B.alloc(Bytes, "arr");
  Reg Index = B.constI(5);
  Reg Val = B.constI(0xabcd);
  // arr[5].field16 with 32-byte elements.
  B.store(Val, Base, Index, 32, 16, 8);
  Reg Load = B.load(Base, Index, 32, 16, 8);
  B.ret(Load);
  EXPECT_EQ(execute(P), 0xabcdu);
}

TEST(Interpreter, NarrowStoresZeroExtendOnLoad) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Bytes = B.constI(64);
  Reg Base = B.alloc(Bytes, "arr");
  Reg Val = B.constI(-1); // All ones.
  B.store(Val, Base, NoReg, 1, 0, 2);
  Reg Load = B.load(Base, NoReg, 1, 0, 4);
  B.ret(Load); // Two 0xff bytes, upper two zero.
  EXPECT_EQ(execute(P), 0xffffu);
}

TEST(Interpreter, FunctionCallAndReturn) {
  ir::Program P;
  ir::Function &Add3 = P.addFunction("add3", 3);
  {
    ProgramBuilder B(P, Add3);
    B.ret(B.add(B.add(0, 1), 2));
  }
  ir::Function &Main = P.addFunction("main", 0);
  P.setEntry(Main.Id);
  {
    ProgramBuilder B(P, Main);
    Reg X = B.constI(1), Y = B.constI(2), Z = B.constI(3);
    B.ret(B.call(Add3, {X, Y, Z}));
  }
  EXPECT_EQ(execute(P), 6u);
}

TEST(Interpreter, RecursionViaSelfCall) {
  // fib(n) with explicit recursion exercises frame save/restore.
  ir::Program P;
  ir::Function &Fib = P.addFunction("fib", 1);
  {
    ProgramBuilder B(P, Fib);
    Reg N = 0;
    Reg Two = B.constI(2);
    Reg Small = B.cmpLt(N, Two);
    uint32_t BaseBB = B.newBlock();
    uint32_t RecBB = B.newBlock();
    B.condBr(Small, BaseBB, RecBB);
    B.switchTo(BaseBB);
    B.ret(N);
    B.switchTo(RecBB);
    Reg N1 = B.addI(N, -1);
    Reg N2 = B.addI(N, -2);
    Reg A = B.call(Fib, {N1});
    Reg C = B.call(Fib, {N2});
    B.ret(B.add(A, C));
  }
  ir::Function &Main = P.addFunction("main", 0);
  P.setEntry(Main.Id);
  {
    ProgramBuilder B(P, Main);
    Reg Ten = B.constI(10);
    B.ret(B.call(Fib, {Ten}));
  }
  EXPECT_EQ(execute(P), 55u);
}

TEST(Interpreter, AllocRecordsCallPath) {
  ir::Program P;
  ir::Function &Helper = P.addFunction("helper", 0);
  uint64_t AllocIp, CallIp;
  {
    ProgramBuilder B(P, Helper);
    Reg Sz = B.constI(64);
    Reg A = B.alloc(Sz, "nodes");
    AllocIp = Helper.Blocks[0]->Instrs.back().Ip;
    B.ret(A);
  }
  ir::Function &Main = P.addFunction("main", 0);
  P.setEntry(Main.Id);
  {
    ProgramBuilder B(P, Main);
    Reg A = B.call(Helper, {});
    CallIp = Main.Blocks[0]->Instrs.back().Ip;
    B.ret(A);
  }
  Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  Interpreter I(P, M, H, nullptr, 0);
  uint64_t Addr = I.run(P.getEntry(), {});
  const mem::DataObject *Obj = M.Objects.lookup(Addr);
  ASSERT_NE(Obj, nullptr);
  EXPECT_EQ(Obj->Name, "nodes");
  ASSERT_EQ(Obj->AllocPath.size(), 2u);
  EXPECT_EQ(Obj->AllocPath[0], CallIp);
  EXPECT_EQ(Obj->AllocPath[1], AllocIp);
}

TEST(Interpreter, FreeReleasesObject) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Sz = B.constI(64);
  Reg A = B.alloc(Sz, "tmp");
  B.free(A);
  B.ret(A);
  Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  Interpreter I(P, M, H, nullptr, 0);
  uint64_t Addr = I.run(P.getEntry(), {});
  EXPECT_EQ(M.Objects.lookup(Addr), nullptr);
}

TEST(Interpreter, InvalidFreeAborts) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Bogus = B.constI(0x1234);
  B.free(Bogus);
  B.ret();
  EXPECT_DEATH(execute(P), "invalid free");
}

TEST(Interpreter, StatsCountInstructionsAndAccesses) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Sz = B.constI(64);
  Reg A = B.alloc(Sz, "x");
  Reg V = B.constI(1);
  B.store(V, A, NoReg, 1, 0, 8);
  B.load(A, NoReg, 1, 0, 8);
  B.ret();
  RunStats Stats;
  execute(P, &Stats);
  EXPECT_EQ(Stats.Instructions, 6u);
  EXPECT_EQ(Stats.MemoryAccesses, 2u);
  // 6 instruction cycles + store (200 cold DRAM) + load (4 L1 hit).
  EXPECT_EQ(Stats.Cycles, 6u + 200u + 4u);
}

TEST(Interpreter, WorkAddsCyclesOnly) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  B.work(1234);
  B.ret();
  RunStats Stats;
  execute(P, &Stats);
  EXPECT_EQ(Stats.Instructions, 2u);
  EXPECT_EQ(Stats.Cycles, 2u + 1234u);
  EXPECT_EQ(Stats.MemoryAccesses, 0u);
}

TEST(Interpreter, SteppingMatchesFullRun) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  Reg Acc = B.constI(0);
  B.forLoopI(0, 1000, 1, [&](Reg I) { B.accumulate(Acc, I); });
  B.ret(Acc);

  Machine M1;
  cache::MemoryHierarchy H1(cache::HierarchyConfig{});
  Interpreter Full(P, M1, H1, nullptr, 0);
  uint64_t Expect = Full.run(P.getEntry(), {});

  Machine M2;
  cache::MemoryHierarchy H2(cache::HierarchyConfig{});
  Interpreter Stepped(P, M2, H2, nullptr, 0);
  Stepped.start(P.getEntry(), {});
  while (Stepped.step(7)) {
  }
  EXPECT_TRUE(Stepped.isDone());
  EXPECT_EQ(Stepped.getResult(), Expect);
  EXPECT_EQ(Stepped.getStats().Instructions, Full.getStats().Instructions);
}

TEST(Interpreter, BudgetGuardTriggers) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);
  uint32_t Loop = B.newBlock();
  B.br(Loop);
  B.switchTo(Loop);
  B.work(0);
  B.br(Loop); // Infinite loop.
  Machine M;
  cache::MemoryHierarchy H(cache::HierarchyConfig{});
  Interpreter I(P, M, H, nullptr, 0);
  EXPECT_DEATH(I.run(0, {}, /*InstructionBudget=*/10000),
               "instruction budget");
}

// Property: random arithmetic expressions evaluate the same as a host
// reference evaluation.
class InterpreterRandom : public ::testing::TestWithParam<int> {};

TEST_P(InterpreterRandom, ArithmeticAgainstReference) {
  Rng R(2024 + GetParam());
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ProgramBuilder B(P, F);

  std::vector<Reg> Regs;
  std::vector<uint64_t> Expect;
  for (int I = 0; I != 4; ++I) {
    int64_t V = static_cast<int64_t>(R.next() % 1000) - 500;
    Regs.push_back(B.constI(V));
    Expect.push_back(static_cast<uint64_t>(V));
  }
  for (int Step = 0; Step != 40; ++Step) {
    size_t A = R.nextBelow(Regs.size());
    size_t C = R.nextBelow(Regs.size());
    uint64_t Va = Expect[A], Vb = Expect[C];
    switch (R.nextBelow(6)) {
    case 0:
      Regs.push_back(B.add(Regs[A], Regs[C]));
      Expect.push_back(Va + Vb);
      break;
    case 1:
      Regs.push_back(B.sub(Regs[A], Regs[C]));
      Expect.push_back(Va - Vb);
      break;
    case 2:
      Regs.push_back(B.mul(Regs[A], Regs[C]));
      Expect.push_back(Va * Vb);
      break;
    case 3:
      Regs.push_back(B.bxor(Regs[A], Regs[C]));
      Expect.push_back(Va ^ Vb);
      break;
    case 4:
      Regs.push_back(B.cmpLt(Regs[A], Regs[C]));
      Expect.push_back(static_cast<int64_t>(Va) < static_cast<int64_t>(Vb));
      break;
    case 5:
      Regs.push_back(B.shr(Regs[A], Regs[C]));
      Expect.push_back(Va >> (Vb & 63));
      break;
    }
  }
  B.ret(Regs.back());
  EXPECT_EQ(execute(P), Expect.back());
}

INSTANTIATE_TEST_SUITE_P(Random, InterpreterRandom, ::testing::Range(0, 20));
