//===- tests/mem_objects_test.cpp - Allocator & object table ---*- C++ -*-===//

#include "mem/DataObjectTable.h"
#include "mem/TrackingAllocator.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::mem;

// --- TrackingAllocator ----------------------------------------------------

TEST(TrackingAllocator, Alignment) {
  TrackingAllocator A;
  for (uint64_t Size : {1ull, 7ull, 16ull, 100ull, 4096ull}) {
    uint64_t Addr = A.allocate(Size);
    EXPECT_EQ(Addr % TrackingAllocator::Alignment, 0u) << "size " << Size;
  }
}

TEST(TrackingAllocator, BlocksDisjoint) {
  TrackingAllocator A;
  uint64_t X = A.allocate(100);
  uint64_t Y = A.allocate(100);
  EXPECT_TRUE(X + 112 <= Y || Y + 112 <= X);
}

TEST(TrackingAllocator, FreeAndReuse) {
  TrackingAllocator A;
  uint64_t X = A.allocate(256);
  EXPECT_TRUE(A.deallocate(X));
  uint64_t Y = A.allocate(256);
  EXPECT_EQ(X, Y); // Best-fit reuses the freed block.
}

TEST(TrackingAllocator, FreeBlockSplitting) {
  TrackingAllocator A;
  uint64_t X = A.allocate(256);
  A.deallocate(X);
  uint64_t Y = A.allocate(64);
  uint64_t Z = A.allocate(128);
  EXPECT_EQ(Y, X);       // Head of the freed block.
  EXPECT_EQ(Z, X + 64);  // Tail of the freed block.
}

TEST(TrackingAllocator, DoubleFreeRejected) {
  TrackingAllocator A;
  uint64_t X = A.allocate(32);
  EXPECT_TRUE(A.deallocate(X));
  EXPECT_FALSE(A.deallocate(X));
  EXPECT_FALSE(A.deallocate(0x1234));
}

TEST(TrackingAllocator, LiveAccounting) {
  TrackingAllocator A;
  EXPECT_EQ(A.getBytesLive(), 0u);
  uint64_t X = A.allocate(100); // Rounded to 112.
  EXPECT_EQ(A.getBytesLive(), 112u);
  A.deallocate(X);
  EXPECT_EQ(A.getBytesLive(), 0u);
  EXPECT_GE(A.getBytesReserved(), 112u);
}

// --- DataObjectTable --------------------------------------------------------

TEST(DataObjectTable, LookupWithinRange) {
  DataObjectTable T;
  uint32_t Id = T.addStatic("arr", 1000, 64);
  const DataObject *O = T.lookup(1000);
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->Id, Id);
  EXPECT_EQ(T.lookup(1063), O);
  EXPECT_EQ(T.lookup(1064), nullptr);
  EXPECT_EQ(T.lookup(999), nullptr);
}

TEST(DataObjectTable, MultipleObjects) {
  DataObjectTable T;
  T.addStatic("a", 100, 10);
  T.addStatic("b", 200, 10);
  T.addHeap("h", 300, 10, {0x400010});
  EXPECT_EQ(T.lookup(105)->Name, "a");
  EXPECT_EQ(T.lookup(205)->Name, "b");
  EXPECT_EQ(T.lookup(305)->Name, "h");
  EXPECT_EQ(T.lookup(150), nullptr);
}

TEST(DataObjectTable, ReleaseHidesObject) {
  DataObjectTable T;
  T.addHeap("h", 500, 50, {});
  EXPECT_NE(T.lookup(510), nullptr);
  EXPECT_TRUE(T.release(500));
  EXPECT_EQ(T.lookup(510), nullptr);
  EXPECT_FALSE(T.release(500)); // Already dead.
  // The record remains for post-mortem attribution.
  EXPECT_EQ(T.get(0).Name, "h");
  EXPECT_FALSE(T.get(0).Live);
}

TEST(DataObjectTable, ReuseAfterRelease) {
  DataObjectTable T;
  T.addHeap("first", 500, 50, {});
  T.release(500);
  uint32_t Second = T.addHeap("second", 500, 30, {});
  EXPECT_EQ(T.lookup(510)->Id, Second);
}

TEST(DataObjectTable, OverlapAborts) {
  DataObjectTable T;
  T.addStatic("a", 100, 50);
  EXPECT_DEATH(T.addStatic("b", 120, 10), "overlaps");
  EXPECT_DEATH(T.addStatic("c", 90, 20), "overlaps");
}

TEST(DataObjectTable, Keys) {
  DataObject StaticObj;
  StaticObj.Name = "arr";
  StaticObj.Kind = ObjectKind::Static;
  EXPECT_EQ(StaticObj.key(), "arr");

  DataObject HeapObj;
  HeapObj.Name = "nodes";
  HeapObj.Kind = ObjectKind::Heap;
  HeapObj.AllocPath = {0x400010, 0x400020};
  EXPECT_EQ(HeapObj.key(), "nodes@4194320>4194336");

  // Same name, different call path -> different identity.
  DataObject Other = HeapObj;
  Other.AllocPath = {0x400010};
  EXPECT_NE(HeapObj.key(), Other.key());
}

TEST(DataObjectTable, KeyStableAcrossInstances) {
  // The paper merges objects across threads by allocation site: two
  // allocations from the same site share a key even at different
  // addresses.
  DataObjectTable T;
  uint32_t A = T.addHeap("zones", 0x1000, 64, {42});
  uint32_t B = T.addHeap("zones", 0x2000, 64, {42});
  EXPECT_EQ(T.get(A).key(), T.get(B).key());
}
