//===- tests/pipeline_parallel_test.cpp - Parallel decoupled lanes -*-C++-*-==//
//
// The parallel-engine decoupled pipeline stacks both machineries: each
// phase thread produces access records into its own lane ring, private
// L1/L2 simulation runs in lane consumers, and shared-L3 traffic is
// merged back in serial segment order at the round barriers. Its
// contract is the strongest in the codebase — bit-identical results to
// the Serial+Inline oracle for any thread count and either consumer
// placement (inline lane drains on a single-core host, lane workers
// plus a merge thread elsewhere; the threaded placement is the TSan
// target). These tests sweep partitioned custom programs over
// {1,2,4,8} threads under both placements, push Alloc/Free churn
// through the delivery-sync hook, and diff every paper workload.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "ir/ProgramBuilder.h"
#include "profile/ProfileIO.h"
#include "runtime/ThreadedRuntime.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

using namespace structslim;
using namespace structslim::runtime;
using structslim::ir::NoReg;
using structslim::ir::Reg;

namespace {

std::string profileText(const profile::Profile &P) {
  std::ostringstream OS;
  profile::writeProfile(P, OS);
  return OS.str();
}

/// Bit-identity check between the Serial+Inline oracle and a
/// parallel-decoupled run. Pipeline health counters (QueueDepthMax &c.)
/// are host-timing diagnostics and intentionally excluded, like
/// WallSeconds and the engine phase tallies.
void expectIdenticalRuns(const RunResult &Oracle, const RunResult &Run) {
  EXPECT_EQ(Oracle.ElapsedCycles, Run.ElapsedCycles);
  EXPECT_EQ(Oracle.TotalCycles, Run.TotalCycles);
  EXPECT_EQ(Oracle.Instructions, Run.Instructions);
  EXPECT_EQ(Oracle.MemoryAccesses, Run.MemoryAccesses);
  EXPECT_EQ(Oracle.Samples, Run.Samples);
  for (unsigned Level = 0; Level != 3; ++Level) {
    EXPECT_EQ(Oracle.Accesses[Level], Run.Accesses[Level])
        << "level " << Level;
    EXPECT_EQ(Oracle.Misses[Level], Run.Misses[Level]) << "level " << Level;
  }
  EXPECT_EQ(Oracle.ReturnValues, Run.ReturnValues);
  ASSERT_EQ(Oracle.Profiles.size(), Run.Profiles.size());
  for (size_t I = 0; I != Oracle.Profiles.size(); ++I)
    EXPECT_EQ(profileText(Oracle.Profiles[I]), profileText(Run.Profiles[I]))
        << "profile " << I;
}

/// Scoped STRUCTSLIM_THREADS override: ThreadPool::defaultThreadCount()
/// consults it on every call, so this flips the consumer placement
/// (inline lane drains vs dedicated workers + merge thread) at will on
/// any host.
class ThreadsEnv {
public:
  explicit ThreadsEnv(const char *Value) {
    const char *Old = std::getenv("STRUCTSLIM_THREADS");
    Had = Old != nullptr;
    Saved = Old ? Old : "";
    setenv("STRUCTSLIM_THREADS", Value, 1);
  }
  ~ThreadsEnv() {
    if (Had)
      setenv("STRUCTSLIM_THREADS", Saved.c_str(), 1);
    else
      unsetenv("STRUCTSLIM_THREADS");
  }

private:
  std::string Saved;
  bool Had = false;
};

/// Health-style phase, parameterizable in thread count: each worker
/// increments then re-reads its own partition of a shared array
/// published through a static mailbox. Reads, writes, cross-round
/// read-own-writes, shared L3 — the full merge surface.
struct WriterProgram {
  ir::Program P;
  uint32_t MainId = 0;
  uint32_t WorkerId = 0;

  WriterProgram(Machine &M, int64_t N, unsigned Threads) {
    uint64_t Mailbox = M.defineStatic("mailbox", 64);
    int64_t Part = N / Threads;
    ir::Function &Main = P.addFunction("main", 0);
    MainId = Main.Id;
    {
      ir::ProgramBuilder B(P, Main);
      Reg Bytes = B.constI(N * 8);
      Reg Base = B.alloc(Bytes, "field");
      B.forLoopI(0, N, 1, [&](Reg I) { B.store(I, Base, I, 8, 0, 8); });
      Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
      B.store(Base, Mb, NoReg, 1, 0, 8);
      B.ret();
    }
    ir::Function &Worker = P.addFunction("writer", 1);
    WorkerId = Worker.Id;
    {
      ir::ProgramBuilder B(P, Worker);
      Reg Tid = 0;
      Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
      Reg Base = B.load(Mb, NoReg, 1, 0, 8);
      Reg Lo = B.mul(Tid, B.constI(Part));
      Reg Hi = B.add(Lo, B.constI(Part));
      B.setLine(20);
      B.forLoop(Lo, Hi, 1, [&](Reg I) {
        B.setLine(21);
        Reg V = B.load(Base, I, 8, 0, 8);
        Reg W = B.add(V, B.constI(3));
        B.store(W, Base, I, 8, 0, 8);
        B.setLine(20);
      });
      Reg Acc = B.constI(0);
      B.setLine(22);
      B.forLoop(Lo, Hi, 1, [&](Reg I) {
        B.setLine(23);
        Reg V = B.load(Base, I, 8, 0, 8);
        B.accumulate(Acc, V);
        B.setLine(22);
      });
      B.ret(Acc);
    }
  }
};

/// Workers that allocate, fill, sum, and free private heap buffers in a
/// loop — every Alloc/Free crosses the serializing sync hook, which in
/// the parallel-decoupled engine must wait for *delivery* (the merge
/// catching up), not merely for the ring to drain.
struct AllocProgram {
  ir::Program P;
  uint32_t WorkerId = 0;

  AllocProgram(int64_t Elems, int64_t Iters) {
    ir::Function &Worker = P.addFunction("churn", 1);
    WorkerId = Worker.Id;
    ir::ProgramBuilder B(P, Worker);
    Reg Tid = 0;
    Reg Acc = B.constI(0);
    B.forLoopI(0, Iters, 1, [&](Reg R) {
      Reg Bytes = B.constI(Elems * 8);
      Reg Buf = B.alloc(Bytes, "scratch");
      B.setLine(30);
      B.forLoop(B.constI(0), B.constI(Elems), 1, [&](Reg I) {
        B.setLine(31);
        Reg V = B.add(B.add(I, Tid), R);
        B.store(V, Buf, I, 8, 0, 8);
        B.setLine(30);
      });
      B.setLine(32);
      B.forLoop(B.constI(0), B.constI(Elems), 1, [&](Reg I) {
        B.setLine(33);
        Reg V = B.load(Buf, I, 8, 0, 8);
        B.accumulate(Acc, V);
        B.setLine(32);
      });
      B.free(Buf);
    });
    B.ret(Acc);
  }
};

RunConfig pipelineConfig(EngineKind Engine, PipelineKind Pipeline) {
  RunConfig Cfg;
  Cfg.Engine = Engine;
  Cfg.Pipeline = Pipeline;
  // Dense, jittered sampling so deferred delivery carries real traffic;
  // the capacity floor so lane-ring backpressure engages in small runs.
  Cfg.Sampling.Period = 64;
  Cfg.PipelineCapacity = 1 << 10;
  return Cfg;
}

RunResult runWriters(EngineKind Engine, PipelineKind Pipeline,
                     unsigned Threads, int64_t N) {
  ThreadedRuntime RT(pipelineConfig(Engine, Pipeline));
  WriterProgram Program(RT.machine(), N, Threads);
  analysis::CodeMap Map(Program.P);
  RT.runPhase(Program.P, &Map, {ThreadSpec{Program.MainId, {}}});
  std::vector<ThreadSpec> Workers;
  for (uint64_t T = 0; T != Threads; ++T)
    Workers.push_back(ThreadSpec{Program.WorkerId, {T}});
  RT.runPhase(Program.P, &Map, Workers);
  return RT.finish();
}

RunResult runChurn(EngineKind Engine, PipelineKind Pipeline,
                   unsigned Threads) {
  ThreadedRuntime RT(pipelineConfig(Engine, Pipeline));
  AllocProgram Program(/*Elems=*/96, /*Iters=*/5);
  analysis::CodeMap Map(Program.P);
  std::vector<ThreadSpec> Workers;
  for (uint64_t T = 0; T != Threads; ++T)
    Workers.push_back(ThreadSpec{Program.WorkerId, {T}});
  RT.runPhase(Program.P, &Map, Workers);
  return RT.finish();
}

void sweepThreadCounts() {
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(std::to_string(Threads) + " threads");
    int64_t N = static_cast<int64_t>(Threads) * 512;
    RunResult Oracle =
        runWriters(EngineKind::Serial, PipelineKind::Inline, Threads, N);
    RunResult Par =
        runWriters(EngineKind::Parallel, PipelineKind::Decoupled, Threads, N);
    expectIdenticalRuns(Oracle, Par);
    EXPECT_GT(Oracle.Samples, 0u);
    // The decoupled run really took the pipeline path: drain batches
    // happened and the resolved lane capacity is reported.
    EXPECT_EQ(Oracle.ConsumerBatches, 0u);
    EXPECT_GT(Par.ConsumerBatches, 0u);
    EXPECT_EQ(Par.PipelineCapacity, 1u << 10);
    // With more than one logical thread the parallel engine really ran.
    if (Threads > 1)
      EXPECT_GT(Par.ParallelPhases, 0u);
  }
}

} // namespace

// Single-core placement: every lane drains inline on backpressure and
// the merge runs at the round barriers on the main thread.
TEST(ParallelDecoupled, ThreadSweepInlineDrainsBitIdentical) {
  ThreadsEnv SingleCore("1");
  sweepThreadCounts();
}

// Multi-core placement: one consumer worker per lane plus a dedicated
// merge thread — the TSan target for the new pipeline.
TEST(ParallelDecoupled, ThreadSweepLaneWorkersBitIdentical) {
  ThreadsEnv FourCores("4");
  sweepThreadCounts();
}

// Alloc/Free churn serializes through the delivery-sync hook: the
// producing thread must observe every prior record fully merged before
// the DataObjectTable mutates. Sweep both placements and widths.
TEST(ParallelDecoupled, AllocFreeChurnThroughDeliverySync) {
  for (const char *Cores : {"1", "4"}) {
    ThreadsEnv Env(Cores);
    for (unsigned Threads : {2u, 8u}) {
      SCOPED_TRACE(std::string("host-threads=") + Cores + " workers=" +
                   std::to_string(Threads));
      RunResult Oracle =
          runChurn(EngineKind::Serial, PipelineKind::Inline, Threads);
      RunResult Par =
          runChurn(EngineKind::Parallel, PipelineKind::Decoupled, Threads);
      expectIdenticalRuns(Oracle, Par);
      EXPECT_GT(Par.ConsumerBatches, 0u);
      EXPECT_GT(Oracle.Samples, 0u);
    }
  }
}

// PipelineKind::Auto engages the per-lane pipeline exactly when the
// host has cores to run it on; either resolution stays bit-identical.
// The churn program is worker-phase-only, so the counters observe the
// parallel engine's choice alone (a serial phase would decouple under
// Auto regardless of core count and muddy them).
TEST(ParallelDecoupled, AutoEngagesOnMultiCoreHostsOnly) {
  RunResult Oracle = runChurn(EngineKind::Serial, PipelineKind::Inline, 4);
  {
    ThreadsEnv FourCores("4");
    RunResult Par = runChurn(EngineKind::Parallel, PipelineKind::Auto, 4);
    expectIdenticalRuns(Oracle, Par);
    EXPECT_GT(Par.ConsumerBatches, 0u);
    EXPECT_EQ(Par.PipelineCapacity, 1u << 10);
  }
  {
    ThreadsEnv SingleCore("1");
    RunResult Par = runChurn(EngineKind::Parallel, PipelineKind::Auto, 4);
    expectIdenticalRuns(Oracle, Par);
    // Auto keeps the deferred-round engine without lane pipelines on a
    // single-core host — no drain batches, no resolved capacity.
    EXPECT_EQ(Par.ConsumerBatches, 0u);
    EXPECT_EQ(Par.PipelineCapacity, 0u);
  }
}

// A hierarchy with a TLB (mode != 0) keeps the deferred-round engine:
// the per-lane pipeline's batch replay requires mode 0, and forcing
// Decoupled must not break identity.
TEST(ParallelDecoupled, NonZeroHierarchyModeKeepsDeferredRounds) {
  ThreadsEnv FourCores("4");
  auto Execute = [](EngineKind Engine, PipelineKind Pipeline) {
    RunConfig Cfg = pipelineConfig(Engine, Pipeline);
    Cfg.Hierarchy.EnableTlb = true;
    ThreadedRuntime RT(Cfg);
    WriterProgram Program(RT.machine(), 2048, 4);
    analysis::CodeMap Map(Program.P);
    RT.runPhase(Program.P, &Map, {ThreadSpec{Program.MainId, {}}});
    std::vector<ThreadSpec> Workers;
    for (uint64_t T = 0; T != 4; ++T)
      Workers.push_back(ThreadSpec{Program.WorkerId, {T}});
    RT.runPhase(Program.P, &Map, Workers);
    return RT.finish();
  };
  RunResult Oracle = Execute(EngineKind::Serial, PipelineKind::Inline);
  RunResult Par = Execute(EngineKind::Parallel, PipelineKind::Decoupled);
  expectIdenticalRuns(Oracle, Par);
}

// A zero queue capacity is a configuration error, not a silent default.
TEST(ParallelDecoupledDeathTest, ZeroPipelineCapacityAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto Misconfigure = [] {
    RunConfig Cfg;
    Cfg.PipelineCapacity = 0;
    ThreadedRuntime RT(Cfg);
    RT.finish();
  };
  EXPECT_DEATH(Misconfigure(), "PipelineCapacity");
}

//===----------------------------------------------------------------------===//
// Differential sweep: every paper workload against the oracle.
//===----------------------------------------------------------------------===//

namespace {

workloads::WorkloadRun runWorkloadWith(const workloads::Workload &W,
                                       EngineKind Engine,
                                       PipelineKind Pipeline) {
  workloads::DriverConfig Cfg;
  Cfg.Scale = 0.08;
  Cfg.Run.Sampling.Period = 2000;
  Cfg.Run.Engine = Engine;
  Cfg.Run.Pipeline = Pipeline;
  // A small ring guarantees lane backpressure engages on every workload.
  Cfg.Run.PipelineCapacity = 1 << 10;
  transform::FieldMap Map(W.hotLayout());
  return workloads::runWorkload(W, Map, Cfg, /*Attach=*/true);
}

} // namespace

// All seven paper workloads, parallel engine + decoupled lanes against
// the Serial+Inline oracle, under the threaded consumer placement. The
// parallel workloads run their native four-thread phases through the
// lane merge; the serial ones cover the single-lane degenerate case.
TEST(ParallelDecoupled, PaperWorkloadsMatchSerialInlineOracle) {
  ThreadsEnv FourCores("4");
  for (const auto &W : workloads::makePaperWorkloads()) {
    SCOPED_TRACE(W->name());
    workloads::WorkloadRun Oracle =
        runWorkloadWith(*W, EngineKind::Serial, PipelineKind::Inline);
    workloads::WorkloadRun Par =
        runWorkloadWith(*W, EngineKind::Parallel, PipelineKind::Decoupled);
    expectIdenticalRuns(Oracle.Result, Par.Result);
    EXPECT_EQ(profileText(Oracle.Merged), profileText(Par.Merged));
    EXPECT_EQ(Oracle.Result.ConsumerBatches, 0u);
    EXPECT_GT(Par.Result.ConsumerBatches, 0u);
    EXPECT_GT(Oracle.Result.Samples, 0u);
    if (W->isParallel())
      EXPECT_GT(Par.Result.ParallelPhases, 0u);
  }
}
