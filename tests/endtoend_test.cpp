//===- tests/endtoend_test.cpp - Full pipeline tests -----------*- C++ -*-===//
//
// Exercises the complete paper methodology (profile -> analyze ->
// advise -> split -> re-run) through workloads::runEndToEnd and checks
// the headline qualitative claims of Tables 3 and 4.
//
//===----------------------------------------------------------------------===//

#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::workloads;

namespace {

DriverConfig e2eConfig(double Scale) {
  DriverConfig Cfg;
  Cfg.Scale = Scale;
  Cfg.Run.Sampling.Period = 2000;
  return Cfg;
}

} // namespace

TEST(EndToEnd, ArtSplitsIntoSixAndSpeedsUp) {
  auto W = makeArt();
  EndToEndResult R = runEndToEnd(*W, e2eConfig(0.3));
  // Fig. 7: six new structures.
  EXPECT_TRUE(R.Plan.isSplit());
  EXPECT_EQ(R.Plan.ClusterOffsets.size(), 6u);
  // Table 3 shape: a solid speedup (paper: 1.37x, the study's largest).
  EXPECT_GT(R.Speedup, 1.15);
  // Table 4 shape: L1 and L2 misses drop substantially.
  EXPECT_GT(R.MissReduction[0], 0.2);
  EXPECT_GT(R.MissReduction[1], 0.2);
  // Overhead stays small (paper: ~2%).
  EXPECT_LT(R.OverheadSim, 0.10);
  EXPECT_GT(R.OverheadSim, 0.0);
}

TEST(EndToEnd, LibquantumTwoWaySplit) {
  auto W = makeLibquantum();
  EndToEndResult R = runEndToEnd(*W, e2eConfig(0.2));
  EXPECT_TRUE(R.Plan.isSplit());
  EXPECT_EQ(R.Plan.ClusterOffsets.size(), 2u);
  EXPECT_GT(R.Speedup, 1.02);
  EXPECT_GT(R.MissReduction[1], 0.3); // Paper: 82.6% L2 reduction.
}

TEST(EndToEnd, EveryBenchmarkImproves) {
  // Table 3's core claim: all seven benchmarks speed up after the
  // StructSlim-guided split.
  for (const auto &W : makePaperWorkloads()) {
    EndToEndResult R = runEndToEnd(*W, e2eConfig(0.15));
    EXPECT_TRUE(R.Plan.isSplit()) << W->name();
    EXPECT_GT(R.Speedup, 1.0) << W->name();
    EXPECT_LT(R.OverheadSim, 0.25) << W->name();
  }
}

TEST(EndToEnd, NnLargestL1Reduction) {
  // Paper Table 4: NN shows the study's largest L1 miss reduction
  // (87.2%, consistent with 8 dists per line instead of 1).
  auto W = makeNn();
  EndToEndResult R = runEndToEnd(*W, e2eConfig(0.25));
  EXPECT_GT(R.MissReduction[0], 0.5);
}

TEST(EndToEnd, SplitPreservesProgramResults) {
  // The split program must compute what the original computed: the
  // driver records per-thread return values.
  auto W = makeTsp();
  EndToEndResult R = runEndToEnd(*W, e2eConfig(0.1));
  ASSERT_EQ(R.OriginalDetached.ReturnValues.size(),
            R.SplitDetached.ReturnValues.size());
  for (size_t I = 0; I != R.OriginalDetached.ReturnValues.size(); ++I)
    EXPECT_EQ(R.OriginalDetached.ReturnValues[I],
              R.SplitDetached.ReturnValues[I])
        << "thread " << I;
}

TEST(EndToEnd, ParallelWorkloadsPreserveResultsToo) {
  auto W = makeClomp();
  EndToEndResult R = runEndToEnd(*W, e2eConfig(0.1));
  ASSERT_EQ(R.OriginalDetached.ReturnValues.size(), 5u);
  for (size_t I = 0; I != 5u; ++I)
    EXPECT_EQ(R.OriginalDetached.ReturnValues[I],
              R.SplitDetached.ReturnValues[I]);
}

TEST(EndToEnd, ProfilerDoesNotPerturbExecution) {
  // Address sampling is passive: profiled and detached runs execute
  // identically (same instruction count, same results, same misses).
  auto W = makeMser();
  EndToEndResult R = runEndToEnd(*W, e2eConfig(0.1));
  EXPECT_EQ(R.OriginalProfiled.Instructions,
            R.OriginalDetached.Instructions);
  EXPECT_EQ(R.OriginalProfiled.MemoryAccesses,
            R.OriginalDetached.MemoryAccesses);
  EXPECT_EQ(R.OriginalProfiled.Misses[0], R.OriginalDetached.Misses[0]);
  EXPECT_EQ(R.OriginalProfiled.ReturnValues,
            R.OriginalDetached.ReturnValues);
  // All extra time is the sampling handler cost.
  EXPECT_GE(R.OriginalProfiled.ElapsedCycles,
            R.OriginalDetached.ElapsedCycles);
}

TEST(EndToEnd, OverheadScalesWithSamplingPeriod) {
  auto W = makeLibquantum();
  DriverConfig Dense = e2eConfig(0.1);
  Dense.Run.Sampling.Period = 500;
  DriverConfig Sparse = e2eConfig(0.1);
  Sparse.Run.Sampling.Period = 50000;
  EndToEndResult RDense = runEndToEnd(*W, Dense);
  EndToEndResult RSparse = runEndToEnd(*W, Sparse);
  EXPECT_GT(RDense.OverheadSim, RSparse.OverheadSim);
  EXPECT_GT(RDense.OriginalProfiled.Samples,
            10 * RSparse.OriginalProfiled.Samples);
}

TEST(EndToEnd, AdviceStableAcrossSamplingPeriods) {
  // The paper's advice must not depend on the exact sampling rate: the
  // same clusters emerge at 1/2k and 1/20k sampling.
  auto W = makeClomp();
  DriverConfig A = e2eConfig(0.15);
  A.Run.Sampling.Period = 2000;
  DriverConfig B = e2eConfig(0.15);
  B.Run.Sampling.Period = 20000;
  EndToEndResult RA = runEndToEnd(*W, A);
  EndToEndResult RB = runEndToEnd(*W, B);
  // The hot cluster (value + nextZone, offsets 16 and 24) must be
  // identical; cold fields may fragment differently when they catch
  // only a sample or two at sparse rates.
  ASSERT_FALSE(RA.Plan.ClusterOffsets.empty());
  ASSERT_FALSE(RB.Plan.ClusterOffsets.empty());
  EXPECT_EQ(RA.Plan.ClusterOffsets[0], RB.Plan.ClusterOffsets[0]);
  EXPECT_EQ(RA.Plan.ClusterOffsets[0], (std::vector<uint32_t>{16, 24}));
}
