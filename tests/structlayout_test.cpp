//===- tests/structlayout_test.cpp - StructLayout tests --------*- C++ -*-===//

#include "ir/StructLayout.h"

#include <gtest/gtest.h>

using namespace structslim;
using namespace structslim::ir;

TEST(StructLayout, SequentialOffsets) {
  StructLayout L("s");
  EXPECT_EQ(L.addField("a", 8), 0u);
  EXPECT_EQ(L.addField("b", 8), 8u);
  EXPECT_EQ(L.addField("c", 8), 16u);
  EXPECT_EQ(L.finalize(), 24u);
}

TEST(StructLayout, NaturalAlignmentInsertsPadding) {
  StructLayout L("s");
  EXPECT_EQ(L.addField("c", 1), 0u);
  EXPECT_EQ(L.addField("i", 4), 4u); // 3 bytes of padding.
  EXPECT_EQ(L.addField("d", 8), 8u);
  EXPECT_EQ(L.finalize(), 16u);
}

TEST(StructLayout, TailPaddingToMaxAlign) {
  StructLayout L("s");
  L.addField("d", 8);
  L.addField("c", 1);
  EXPECT_EQ(L.finalize(), 16u); // 9 -> 16.
}

TEST(StructLayout, ExplicitAlignment) {
  StructLayout L("s");
  // A char array aligned to 8 (like NN's entry).
  EXPECT_EQ(L.addField("entry", 56, 8), 0u);
  EXPECT_EQ(L.addField("dist", 8), 56u);
  EXPECT_EQ(L.finalize(), 64u);
}

TEST(StructLayout, FieldContaining) {
  StructLayout L("s");
  L.addField("a", 4);
  L.addField("b", 4);
  L.finalize();
  ASSERT_NE(L.fieldContaining(0), nullptr);
  EXPECT_EQ(L.fieldContaining(0)->Name, "a");
  EXPECT_EQ(L.fieldContaining(3)->Name, "a");
  EXPECT_EQ(L.fieldContaining(4)->Name, "b");
  EXPECT_EQ(L.fieldContaining(8), nullptr); // Past the end.
}

TEST(StructLayout, FieldContainingPadding) {
  StructLayout L("s");
  L.addField("c", 1);
  L.addField("d", 8);
  L.finalize();
  EXPECT_EQ(L.fieldContaining(0)->Name, "c");
  EXPECT_EQ(L.fieldContaining(3), nullptr); // Padding byte.
  EXPECT_EQ(L.fieldContaining(8)->Name, "d");
}

TEST(StructLayout, FieldNamed) {
  StructLayout L("s");
  L.addField("x", 8);
  EXPECT_NE(L.fieldNamed("x"), nullptr);
  EXPECT_EQ(L.fieldNamed("y"), nullptr);
}

TEST(StructLayout, ToStringRendersCTypes) {
  StructLayout L("tree");
  L.addField("sz", 4);
  L.addField("x", 8);
  L.addField("tag", 1);
  L.addField("blob", 56);
  L.finalize();
  std::string S = L.toString();
  EXPECT_NE(S.find("struct tree {"), std::string::npos);
  EXPECT_NE(S.find("int sz;"), std::string::npos);
  EXPECT_NE(S.find("long x;"), std::string::npos);
  EXPECT_NE(S.find("char tag;"), std::string::npos);
  EXPECT_NE(S.find("char[56] blob;"), std::string::npos);
}

TEST(StructLayout, EmptyLayout) {
  StructLayout L("e");
  EXPECT_TRUE(L.empty());
  EXPECT_EQ(L.getSize(), 0u);
  EXPECT_EQ(L.fieldContaining(0), nullptr);
}

// The seven paper structures lay out as the paper describes.
TEST(StructLayout, PaperStructSizes) {
  StructLayout F1("f1_neuron");
  for (const char *Name : {"I", "W", "X", "V", "U", "P", "Q", "R"})
    F1.addField(Name, 8);
  EXPECT_EQ(F1.finalize(), 64u);

  StructLayout Node("node_t");
  for (const char *Name : {"parent", "shortcut", "region", "area"})
    Node.addField(Name, 4);
  EXPECT_EQ(Node.finalize(), 16u); // Paper: stride 16.

  StructLayout Tree("tree");
  for (const char *Name : {"sz", "x", "y", "left", "right", "next", "prev"})
    Tree.addField(Name, 8);
  EXPECT_EQ(Tree.finalize(), 56u);
}
