//===- tests/simmemory_test.cpp - Paged memory tests -----------*- C++ -*-===//

#include "mem/SimMemory.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace structslim;
using namespace structslim::mem;

TEST(SimMemory, ZeroByDefault) {
  SimMemory M;
  EXPECT_EQ(M.read(0, 8), 0u);
  EXPECT_EQ(M.read(0xdeadbeef, 4), 0u);
  EXPECT_EQ(M.getNumPages(), 0u); // Reads do not materialize pages.
}

TEST(SimMemory, RoundTripAllSizes) {
  SimMemory M;
  for (unsigned Size : {1u, 2u, 4u, 8u}) {
    uint64_t Value = 0x1122334455667788ull;
    uint64_t Mask = Size == 8 ? ~0ull : (1ull << (Size * 8)) - 1;
    M.write(100, Size, Value);
    EXPECT_EQ(M.read(100, Size), Value & Mask) << "size " << Size;
  }
}

TEST(SimMemory, LittleEndian) {
  SimMemory M;
  M.write(0, 8, 0x0807060504030201ull);
  for (uint64_t B = 0; B != 8; ++B)
    EXPECT_EQ(M.read(B, 1), B + 1);
}

TEST(SimMemory, PartialOverwrite) {
  SimMemory M;
  M.write(0, 8, ~0ull);
  M.write(2, 2, 0);
  EXPECT_EQ(M.read(0, 8), 0xffffffff0000ffffull);
}

TEST(SimMemory, PageBoundaryStraddle) {
  SimMemory M;
  uint64_t Addr = SimMemory::PageSize - 3;
  M.write(Addr, 8, 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(M.read(Addr, 8), 0xa1b2c3d4e5f60718ull);
  EXPECT_EQ(M.getNumPages(), 2u);
  // Bytes land on both sides: 18-07-f6 before the boundary, e5 after.
  EXPECT_EQ(M.read(Addr, 1), 0x18u);
  EXPECT_EQ(M.read(SimMemory::PageSize - 1, 1), 0xf6u);
  EXPECT_EQ(M.read(SimMemory::PageSize, 1), 0xe5u);
}

TEST(SimMemory, StraddleReadFromPartiallyMaterializedPages) {
  SimMemory M;
  // Only the second page exists.
  M.write(SimMemory::PageSize, 1, 0xee);
  uint64_t Addr = SimMemory::PageSize - 4;
  EXPECT_EQ(M.read(Addr, 8), 0xeeull << 32);
}

TEST(SimMemory, DistantAddressesIndependent) {
  SimMemory M;
  M.write(0x10, 8, 1);
  M.write(0x7f0000000000ull, 8, 2);
  M.write(0x600000000000ull, 8, 3);
  EXPECT_EQ(M.read(0x10, 8), 1u);
  EXPECT_EQ(M.read(0x7f0000000000ull, 8), 2u);
  EXPECT_EQ(M.read(0x600000000000ull, 8), 3u);
  EXPECT_EQ(M.getNumPages(), 3u);
}

// Property: random writes/reads agree with a byte-map reference model.
class SimMemoryRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimMemoryRandom, MatchesReferenceModel) {
  Rng R(500 + GetParam());
  SimMemory M;
  std::map<uint64_t, uint8_t> Ref;
  // Confine to a couple of pages so operations collide often.
  uint64_t Base = R.nextBelow(1ull << 40);
  for (int Op = 0; Op != 2000; ++Op) {
    uint64_t Addr = Base + R.nextBelow(3 * SimMemory::PageSize);
    unsigned Size = 1u << R.nextBelow(4);
    if (R.nextBelow(2) == 0) {
      uint64_t Value = R.next();
      M.write(Addr, Size, Value);
      for (unsigned B = 0; B != Size; ++B)
        Ref[Addr + B] = static_cast<uint8_t>(Value >> (8 * B));
    } else {
      uint64_t Expect = 0;
      for (unsigned B = 0; B != Size; ++B) {
        auto It = Ref.find(Addr + B);
        uint64_t Byte = It == Ref.end() ? 0 : It->second;
        Expect |= Byte << (8 * B);
      }
      ASSERT_EQ(M.read(Addr, Size), Expect)
          << "addr " << Addr << " size " << Size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SimMemoryRandom, ::testing::Range(0, 10));

// --- PageAccessCache ---------------------------------------------------------

TEST(PageAccessCache, EpochInvalidationOnPageCreation) {
  SimMemory M;
  PageAccessCache C(M);
  // Reading an absent page returns zero and must not cache anything.
  EXPECT_EQ(C.read(0x1000, 8), 0u);
  uint64_t EpochBefore = M.getEpoch();
  // Materialize the page behind the cache's back.
  M.write(0x1000, 8, 0xdeadbeef);
  EXPECT_GT(M.getEpoch(), EpochBefore);
  // The cache must see the new page, not a stale "absent" conclusion.
  EXPECT_EQ(C.read(0x1000, 8), 0xdeadbeefu);
}

TEST(PageAccessCache, WriteCreatedPageStaysCachedAcrossResync) {
  SimMemory M;
  PageAccessCache C(M);
  // The first cached write creates the page, which bumps the epoch;
  // the cache must resync after creation so its fresh entry survives.
  C.write(0x2000, 8, 42);
  EXPECT_EQ(C.read(0x2000, 8), 42u);
  EXPECT_EQ(M.read(0x2000, 8), 42u);
}

TEST(PageAccessCache, StraddlingAccessesFallBackToSimMemory) {
  SimMemory M;
  PageAccessCache C(M);
  uint64_t Boundary = 5 * SimMemory::PageSize;
  C.write(Boundary - 4, 8, 0x1122334455667788ull);
  EXPECT_EQ(C.read(Boundary - 4, 8), 0x1122334455667788ull);
  EXPECT_EQ(M.read(Boundary - 4, 8), 0x1122334455667788ull);
  // Bytes landed on both sides of the boundary.
  EXPECT_EQ(M.read(Boundary - 4, 4), 0x55667788u);
  EXPECT_EQ(M.read(Boundary, 4), 0x11223344u);
}

// Property: a PageAccessCache over a SimMemory agrees byte for byte
// with direct SimMemory access, under random mixes of cached reads,
// cached writes, direct writes (pointer sharing: no epoch move), page
// creation (epoch moves), and page-straddling accesses. Direct-mapped
// conflicts are provoked by spanning more pages than cache entries.
class PageAccessCacheRandom : public ::testing::TestWithParam<int> {};

TEST_P(PageAccessCacheRandom, MatchesDirectSimMemory) {
  Rng R(7000 + GetParam());
  SimMemory M, Direct;
  PageAccessCache C(M);
  // 96 pages > 64 entries: index conflicts guaranteed.
  uint64_t Span = 96 * SimMemory::PageSize;
  uint64_t Base = (R.nextBelow(1ull << 40)) & ~(SimMemory::PageSize - 1);
  for (int Op = 0; Op != 4000; ++Op) {
    uint64_t Addr = Base + R.nextBelow(Span);
    if (R.nextBelow(8) == 0) // bias toward page-boundary straddles
      Addr = (Addr & ~(SimMemory::PageSize - 1)) + SimMemory::PageSize -
             (1 + R.nextBelow(7));
    unsigned Size = 1u << R.nextBelow(4);
    switch (R.nextBelow(4)) {
    case 0: { // cached write
      uint64_t V = R.next();
      C.write(Addr, Size, V);
      Direct.write(Addr, Size, V);
      break;
    }
    case 1: { // direct write into the same SimMemory (shared pointers)
      uint64_t V = R.next();
      M.write(Addr, Size, V);
      Direct.write(Addr, Size, V);
      break;
    }
    default:
      ASSERT_EQ(C.read(Addr, Size), Direct.read(Addr, Size))
          << "op " << Op << " addr " << Addr << " size " << Size;
    }
  }
  // Full sweep: every materialized byte agrees.
  for (uint64_t Page = 0; Page != 96; ++Page)
    for (uint64_t Off = 0; Off < SimMemory::PageSize; Off += 8) {
      uint64_t Addr = Base + Page * SimMemory::PageSize + Off;
      ASSERT_EQ(C.read(Addr, 8), Direct.read(Addr, 8)) << "addr " << Addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Random, PageAccessCacheRandom,
                         ::testing::Range(0, 8));
