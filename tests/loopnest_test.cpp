//===- tests/loopnest_test.cpp - Havlak loop-nesting tests -----*- C++ -*-===//

#include "analysis/Dominators.h"
#include "analysis/LoopNest.h"
#include "ir/Program.h"
#include "ir/ProgramBuilder.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace structslim;
using namespace structslim::analysis;
using structslim::ir::Reg;

namespace {

std::unique_ptr<ir::Function>
makeCfg(const std::vector<std::vector<uint32_t>> &Succs) {
  auto F = std::make_unique<ir::Function>();
  F->Name = "cfg";
  for (size_t I = 0; I != Succs.size(); ++I) {
    auto BB = std::make_unique<ir::BasicBlock>();
    BB->Id = static_cast<uint32_t>(I);
    ir::Instr Term;
    Term.Op = Succs[I].empty()
                  ? ir::Opcode::Ret
                  : (Succs[I].size() == 1 ? ir::Opcode::Br
                                          : ir::Opcode::CondBr);
    Term.Line = static_cast<uint32_t>(I + 1);
    BB->Instrs.push_back(Term);
    BB->Succs = Succs[I];
    F->Blocks.push_back(std::move(BB));
  }
  return F;
}

const Loop *loopWithHeader(const LoopNest &Nest, uint32_t Header) {
  for (const Loop &L : Nest.loops())
    if (L.Header == Header)
      return &L;
  return nullptr;
}

} // namespace

TEST(LoopNest, StraightLineHasNoLoops) {
  auto F = makeCfg({{1}, {2}, {}});
  LoopNest Nest(*F);
  EXPECT_TRUE(Nest.loops().empty());
  EXPECT_EQ(Nest.innermostLoopFor(1), -1);
}

TEST(LoopNest, SimpleLoop) {
  // 0 -> 1 <-> 2, 1 -> 3
  auto F = makeCfg({{1}, {2, 3}, {1}, {}});
  LoopNest Nest(*F);
  ASSERT_EQ(Nest.loops().size(), 1u);
  const Loop &L = Nest.loops()[0];
  EXPECT_EQ(L.Header, 1u);
  EXPECT_EQ(L.Parent, -1);
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_FALSE(L.Irreducible);
  EXPECT_EQ(L.Blocks, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(Nest.innermostLoopFor(1), 0);
  EXPECT_EQ(Nest.innermostLoopFor(2), 0);
  EXPECT_EQ(Nest.innermostLoopFor(0), -1);
  EXPECT_EQ(Nest.innermostLoopFor(3), -1);
}

TEST(LoopNest, SelfLoop) {
  auto F = makeCfg({{1}, {1, 2}, {}});
  LoopNest Nest(*F);
  ASSERT_EQ(Nest.loops().size(), 1u);
  EXPECT_EQ(Nest.loops()[0].Header, 1u);
  EXPECT_EQ(Nest.loops()[0].Blocks, (std::vector<uint32_t>{1}));
}

TEST(LoopNest, NestedLoops) {
  // outer: 1..4; inner: 2..3
  // 0->1, 1->2, 2->3, 3->{2,4}, 4->{1,5}, 5
  auto F = makeCfg({{1}, {2}, {3}, {2, 4}, {1, 5}, {}});
  LoopNest Nest(*F);
  ASSERT_EQ(Nest.loops().size(), 2u);
  const Loop *Inner = loopWithHeader(Nest, 2);
  const Loop *Outer = loopWithHeader(Nest, 1);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Inner->Parent, static_cast<int>(Outer->Id));
  EXPECT_EQ(Inner->Depth, 2u);
  EXPECT_EQ(Outer->Depth, 1u);
  // Inner blocks attribute to the inner loop.
  EXPECT_EQ(Nest.innermostLoopFor(2), static_cast<int>(Inner->Id));
  EXPECT_EQ(Nest.innermostLoopFor(3), static_cast<int>(Inner->Id));
  EXPECT_EQ(Nest.innermostLoopFor(1), static_cast<int>(Outer->Id));
  EXPECT_EQ(Nest.innermostLoopFor(4), static_cast<int>(Outer->Id));
  // Outer loop's block set includes the inner loop's blocks.
  EXPECT_EQ(Outer->Blocks, (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(LoopNest, IrreducibleRegionFlagged) {
  // Two entries into the {1,2} cycle: 0->1, 0->2, 1->2, 2->1, 1->3.
  auto F = makeCfg({{1, 2}, {2, 3}, {1}, {}});
  LoopNest Nest(*F);
  ASSERT_FALSE(Nest.loops().empty());
  bool AnyIrreducible = false;
  for (const Loop &L : Nest.loops())
    AnyIrreducible |= L.Irreducible;
  EXPECT_TRUE(AnyIrreducible);
}

TEST(LoopNest, LineRanges) {
  auto F = makeCfg({{1}, {2, 3}, {1}, {}});
  // Blocks carry lines id+1: loop blocks 1,2 -> lines 2..3.
  LoopNest Nest(*F);
  ASSERT_EQ(Nest.loops().size(), 1u);
  EXPECT_EQ(Nest.loops()[0].LineBegin, 2u);
  EXPECT_EQ(Nest.loops()[0].LineEnd, 3u);
  EXPECT_EQ(Nest.loops()[0].name(), "2-3");
}

TEST(LoopNest, BuilderForLoopIsDiscovered) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  B.setLine(10);
  B.forLoopI(0, 8, 1, [&](Reg) { B.setLine(11); });
  B.setLine(12);
  B.ret();
  LoopNest Nest(F);
  ASSERT_EQ(Nest.loops().size(), 1u);
  EXPECT_EQ(Nest.loops()[0].LineBegin, 10u);
}

TEST(LoopNest, BuilderNestedLoops) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  B.forLoopI(0, 4, 1, [&](Reg) {
    B.forLoopI(0, 4, 1, [&](Reg) {
      B.forLoopI(0, 4, 1, [&](Reg) {});
    });
  });
  B.ret();
  LoopNest Nest(F);
  ASSERT_EQ(Nest.loops().size(), 3u);
  unsigned MaxDepth = 0;
  for (const Loop &L : Nest.loops())
    MaxDepth = std::max(MaxDepth, L.Depth);
  EXPECT_EQ(MaxDepth, 3u);
}

// Property: on random *reducible* CFGs (built from structured
// constructs), Havlak's loops coincide with dominator-based natural
// loops: same headers, and every block maps to the same innermost
// header.
namespace {

/// Natural-loop oracle: for each back edge t->h (h dominates t), the
/// loop body is h plus everything reaching t without passing h.
std::map<uint32_t, std::set<uint32_t>>
naturalLoops(const ir::Function &F) {
  DominatorTree DT(F);
  std::map<uint32_t, std::set<uint32_t>> Loops; // header -> blocks
  for (const auto &BB : F.Blocks) {
    if (!DT.isReachable(BB->Id))
      continue;
    for (uint32_t H : BB->Succs) {
      if (!DT.dominates(H, BB->Id))
        continue;
      auto &Body = Loops[H];
      Body.insert(H);
      std::vector<uint32_t> Stack;
      if (BB->Id != H && Body.insert(BB->Id).second)
        Stack.push_back(BB->Id);
      // Walk predecessors up to the header.
      std::vector<std::vector<uint32_t>> Preds(F.Blocks.size());
      for (const auto &Q : F.Blocks)
        for (uint32_t S : Q->Succs)
          Preds[S].push_back(Q->Id);
      while (!Stack.empty()) {
        uint32_t Cur = Stack.back();
        Stack.pop_back();
        for (uint32_t Pr : Preds[Cur])
          if (DT.isReachable(Pr) && Body.insert(Pr).second)
            Stack.push_back(Pr);
      }
    }
  }
  return Loops;
}

/// Recursively emits a random structured region.
void emitRandomRegion(ir::ProgramBuilder &B, Rng &R, unsigned Depth) {
  unsigned NumStmts = 1 + static_cast<unsigned>(R.nextBelow(3));
  for (unsigned S = 0; S != NumStmts; ++S) {
    switch (Depth == 0 ? 0 : R.nextBelow(3)) {
    case 0:
      B.work(1);
      break;
    case 1:
      B.forLoopI(0, 2, 1,
                 [&](Reg) { emitRandomRegion(B, R, Depth - 1); });
      break;
    case 2: {
      Reg C = B.constI(static_cast<int64_t>(R.nextBelow(2)));
      B.ifThenElse(C, [&] { emitRandomRegion(B, R, Depth - 1); },
                   [&] { emitRandomRegion(B, R, Depth - 1); });
      break;
    }
    }
  }
}

} // namespace

class LoopNestRandom : public ::testing::TestWithParam<int> {};

TEST_P(LoopNestRandom, MatchesNaturalLoopOracle) {
  Rng R(99 + GetParam());
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  emitRandomRegion(B, R, 3);
  B.ret();

  LoopNest Nest(F);
  auto Oracle = naturalLoops(F);

  // Same set of headers.
  std::set<uint32_t> HavlakHeaders;
  for (const Loop &L : Nest.loops()) {
    EXPECT_FALSE(L.Irreducible);
    HavlakHeaders.insert(L.Header);
  }
  std::set<uint32_t> OracleHeaders;
  for (const auto &[H, Body] : Oracle)
    OracleHeaders.insert(H);
  EXPECT_EQ(HavlakHeaders, OracleHeaders);

  // Identical full body sets per header.
  for (const Loop &L : Nest.loops()) {
    std::set<uint32_t> Blocks(L.Blocks.begin(), L.Blocks.end());
    EXPECT_EQ(Blocks, Oracle[L.Header]) << "header " << L.Header;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStructured, LoopNestRandom,
                         ::testing::Range(0, 20));
