//===- bench/HostFeatures.h - Shared BENCH_*.json header fields -*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Every BENCH_*.json header records the host's vector capabilities and
// the tier each SIMD kernel actually dispatches to, so throughput
// trajectories are comparable across hosts (an AVX2 box and a
// forced-scalar CI runner produce legitimately different numbers).
//
//===----------------------------------------------------------------------===//

#ifndef STRUCTSLIM_BENCH_HOSTFEATURES_H
#define STRUCTSLIM_BENCH_HOSTFEATURES_H

#include "cache/Cache.h"
#include "core/StrideKernel.h"
#include "support/Simd.h"

#include <string>

namespace structslim {

/// JSON fields (each line indented two spaces, trailing ",\n") naming
/// the host CPU features and the active kernel dispatch tiers. Splice
/// directly after the "bench" field of a BENCH_*.json header.
inline std::string hostFeatureJsonFields() {
  namespace simd = support::simd;
  std::string Out;
  Out += std::string("  \"host_avx2\": ") +
         (simd::hostAvx2() ? "true" : "false") + ",\n";
  Out += std::string("  \"host_sse2\": ") +
         (simd::hostSse2() ? "true" : "false") + ",\n";
  Out += std::string("  \"simd_forced_scalar\": ") +
         (simd::scalarForced() ? "true" : "false") + ",\n";
  Out += std::string("  \"cache_probe_level\": \"") +
         simd::levelName(cache::SetAssocCache::batchProbeLevel()) + "\",\n";
  Out += std::string("  \"stride_kernel_level\": \"") +
         simd::levelName(core::strideKernelLevel()) + "\",\n";
  return Out;
}

} // namespace structslim

#endif // STRUCTSLIM_BENCH_HOSTFEATURES_H
