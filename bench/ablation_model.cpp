//===- bench/ablation_model.cpp - Machine-model robustness -----*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Robustness check for the simulated-machine substitution (DESIGN.md):
// re-runs the ART end-to-end pipeline under model variations — hardware
// stride prefetcher on/off and data-TLB modeling on/off — and shows
// that StructSlim's advice is invariant and the speedup shape survives.
// The paper notes that prefetchers recognize non-unit strides yet long
// strides still waste cache capacity; with the prefetcher enabled the
// split speedup shrinks but does not vanish, which reproduces that
// argument quantitatively.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 0.6;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  auto W = workloads::makeArt();

  std::cout << "Ablation: ART end-to-end under machine-model "
               "variations\n\n";
  TablePrinter Table;
  Table.setHeader({"Model", "Speedup", "Clusters", "Struct size",
                   "L1 miss reduction", "TLB miss ratio"});

  struct Variant {
    const char *Name;
    bool Prefetch;
    bool Tlb;
  };
  for (const Variant &V :
       {Variant{"baseline", false, false},
        Variant{"+prefetcher", true, false}, Variant{"+TLB", false, true},
        Variant{"+prefetcher +TLB", true, true}}) {
    workloads::DriverConfig Config;
    Config.Scale = Scale;
    Config.Run.Hierarchy.EnablePrefetcher = V.Prefetch;
    Config.Run.Hierarchy.EnableTlb = V.Tlb;
    workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);
    const core::ObjectAnalysis *Hot = R.Analysis.findObject("f1_neuron");
    // TLB miss ratio across the hot object's sampled accesses.
    std::string TlbCell = "-";
    if (V.Tlb && Hot && Hot->SampleCount != 0)
      TlbCell = formatPercent(static_cast<double>(Hot->TlbMissSamples) /
                              Hot->SampleCount);
    Table.addRow({V.Name, formatTimes(R.Speedup),
                  std::to_string(R.Plan.ClusterOffsets.size()),
                  Hot ? std::to_string(Hot->StructSize) + " B" : "-",
                  formatPercent(R.MissReduction[0]), TlbCell});
  }
  Table.print(std::cout);
  std::cout << "\n(advice — six clusters over a 64-byte structure — is "
               "identical under every model variant)\n";
  return 0;
}
