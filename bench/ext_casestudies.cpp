//===- bench/ext_casestudies.cpp - Extra case studies ----------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Runs the StructSlim pipeline on two case studies beyond the paper's
// seven — 429.mcf's arc structure and streamcluster's point structure,
// both classic splitting targets from the suites the paper's overhead
// figures cover — and prints the advice plus the end-to-end speedup.
// Shows the tool generalizing past its calibration set.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "core/Report.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 0.5;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  std::cout << "Extra case studies (beyond the paper's Table 2)\n\n";
  TablePrinter Table;
  Table.setHeader({"Benchmark", "Hot object", "l_d", "Inferred size",
                   "Clusters", "Speedup"});

  for (const auto &W : workloads::makeExtraWorkloads()) {
    workloads::DriverConfig Config;
    Config.Scale = Scale;
    workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);
    const core::ObjectAnalysis *Hot =
        R.Analysis.findObject(W->hotObjectName());
    Table.addRow({W->name(), W->hotObjectName(),
                  Hot ? formatPercent(Hot->HotShare) : "-",
                  Hot && Hot->StructSize
                      ? std::to_string(Hot->StructSize) + " B"
                      : "-",
                  std::to_string(R.Plan.ClusterOffsets.size()),
                  formatTimes(R.Speedup)});
    if (Hot) {
      ir::StructLayout Layout = W->hotLayout();
      std::cout << "--- " << W->name() << " ---\n"
                << core::renderAdviceText(R.Plan, *Hot, &Layout)
                << core::renderFieldTable(*Hot) << "\n";
    }
  }
  Table.print(std::cout);
  return 0;
}
