//===- bench/OverheadSuite.h - Shared overhead-figure harness --*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Shared driver for Figures 4 and 5: runs every benchmark of a
// synthetic suite twice (profiler detached / attached) and tabulates
// the per-benchmark overhead, the quantity the paper's bar charts show.
//
//===----------------------------------------------------------------------===//

#ifndef STRUCTSLIM_BENCH_OVERHEADSUITE_H
#define STRUCTSLIM_BENCH_OVERHEADSUITE_H

#include "analysis/CodeMap.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "workloads/Synthetic.h"

#include <iostream>
#include <string>
#include <vector>

namespace structslim {
namespace benchutil {

inline runtime::RunResult runSpec(const workloads::SyntheticSpec &Spec,
                                  double Scale, bool Attach) {
  runtime::RunConfig Cfg;
  Cfg.AttachProfiler = Attach;
  runtime::ThreadedRuntime RT(Cfg);
  workloads::BuiltWorkload Built = workloads::buildSynthetic(Spec, Scale);
  analysis::CodeMap Map(*Built.Program);
  for (const auto &Phase : Built.Phases)
    RT.runPhase(*Built.Program, &Map, Phase);
  return RT.finish();
}

inline int runOverheadSuite(const std::vector<workloads::SyntheticSpec> &Suite,
                            const char *Title, double PaperAverage,
                            int argc, char **argv) {
  double Scale = 1.0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  std::cout << Title << "\n\n";
  TablePrinter Table;
  Table.setHeader({"Benchmark", "Overhead (sim)", "Overhead (wall)",
                   "Samples", "Accesses"});
  std::vector<double> Overheads;
  for (const workloads::SyntheticSpec &Spec : Suite) {
    runtime::RunResult Detached = runSpec(Spec, Scale, false);
    runtime::RunResult Attached = runSpec(Spec, Scale, true);
    double Sim = Detached.ElapsedCycles == 0
                     ? 0.0
                     : static_cast<double>(Attached.ElapsedCycles) /
                               Detached.ElapsedCycles -
                           1.0;
    double Wall = Detached.WallSeconds <= 0
                      ? 0.0
                      : Attached.WallSeconds / Detached.WallSeconds - 1.0;
    Overheads.push_back(Sim);
    Table.addRow({Spec.Name, formatPercent(Sim), formatPercent(Wall),
                  std::to_string(Attached.Samples),
                  std::to_string(Attached.MemoryAccesses)});
  }
  Table.addRow({"average", formatPercent(mean(Overheads)), "",
                "(paper: " + formatDouble(PaperAverage, 1) + "%)", ""});
  Table.print(std::cout);
  return 0;
}

} // namespace benchutil
} // namespace structslim

#endif // STRUCTSLIM_BENCH_OVERHEADSUITE_H
