//===- bench/ablation_reorder.cpp - Split vs reorder ------------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Compares the two layout transformations the same StructSlim analysis
// can drive: full structure splitting (the paper's) versus in-place
// field *reordering* (hot cluster packed first — the conservative
// fallback when splitting is unsafe, e.g. escaping pointers or ABI
// constraints). The record spans two cache lines (128 bytes) with the
// two hot fields on different lines; reordering brings them onto one
// line (halving the misses), while splitting also drops the cold bytes
// from the stream and wins outright:
//
//   expected ordering: split > reorder > original.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "core/Advice.h"
#include "ir/ProgramBuilder.h"
#include "profile/MergeTree.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "transform/FieldMap.h"

#include <iostream>

using namespace structslim;
using ir::Reg;

namespace {

/// struct rec: sixteen 8-byte fields (128 B). The hot loop reads f0
/// (offset 0) and f9 (offset 72, on the second line); a warm loop reads
/// f4 and f12; the rest are cold.
ir::StructLayout recLayout() {
  ir::StructLayout L("rec");
  for (int I = 0; I != 16; ++I)
    L.addField("f" + std::to_string(I), 8);
  L.finalize();
  return L;
}

std::unique_ptr<ir::Program> buildProgram(const transform::FieldMap &Map,
                                          int64_t N, int64_t Reps) {
  auto P = std::make_unique<ir::Program>();
  ir::Function &F = P->addFunction("main", 0);
  ir::ProgramBuilder B(*P, F);

  auto FieldRef = [&](const std::string &Name) {
    return Map.locate(Name);
  };
  std::vector<Reg> Bases;
  B.setLine(1);
  for (unsigned G = 0; G != Map.getNumGroups(); ++G) {
    Reg Bytes = B.constI(N * Map.getGroupSize(G));
    Bases.push_back(B.alloc(Bytes, "rec" + Map.groupSuffix(G)));
  }
  auto Load = [&](const std::string &Name, Reg Index) {
    transform::FieldLoc Loc = FieldRef(Name);
    return B.load(Bases[Loc.Group], Index, Map.getGroupSize(Loc.Group),
                  Loc.Offset, 8);
  };
  auto Store = [&](const std::string &Name, Reg Index, Reg Value) {
    transform::FieldLoc Loc = FieldRef(Name);
    B.store(Value, Bases[Loc.Group], Index, Map.getGroupSize(Loc.Group),
            Loc.Offset, 8);
  };

  B.forLoopI(0, N, 1, [&](Reg I) {
    B.setLine(3);
    for (int FieldIndex = 0; FieldIndex != 16; ++FieldIndex)
      Store("f" + std::to_string(FieldIndex), I,
            B.addI(I, FieldIndex));
    B.setLine(1);
  });

  Reg Acc = B.constI(0);
  // Hot loop, lines 10-11: f0 + f9 (two lines apart originally).
  B.setLine(10);
  B.forLoopI(0, Reps, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(11);
      Reg A = Load("f0", I);
      Reg C = Load("f9", I);
      B.accumulate(Acc, B.add(A, C));
      B.work(10);
      B.setLine(10);
    });
  });
  // Warm loop, lines 20-21: f4 + f12, fewer repetitions.
  B.setLine(20);
  B.forLoopI(0, Reps / 4, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(21);
      Reg A = Load("f4", I);
      Reg C = Load("f12", I);
      B.accumulate(Acc, B.add(A, C));
      B.work(10);
      B.setLine(20);
    });
  });
  B.ret(Acc);
  return P;
}

runtime::RunResult run(const ir::Program &P, bool Attach,
                       profile::Profile *MergedOut = nullptr) {
  runtime::RunConfig Cfg;
  Cfg.AttachProfiler = Attach;
  runtime::ThreadedRuntime RT(Cfg);
  analysis::CodeMap Map(P);
  RT.runPhase(P, &Map, {runtime::ThreadSpec{P.getEntry(), {}}});
  runtime::RunResult R = RT.finish();
  if (MergedOut && Attach)
    *MergedOut = profile::mergeProfiles(std::move(R.Profiles));
  return R;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 40000; // 128 B * 40000 = 5 MB, beyond L2.
  int64_t Reps = 16;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--n=", 0) == 0)
      N = std::stoll(Arg.substr(4));
  }

  ir::StructLayout Layout = recLayout();
  transform::FieldMap Original(Layout);
  auto Base = buildProgram(Original, N, Reps);

  // Profile and analyze once; derive both plans.
  profile::Profile Merged;
  run(*Base, true, &Merged);
  core::StructSlimAnalyzer Analyzer{core::AnalysisConfig()};
  Analyzer.registerLayout("rec", Layout);
  core::AnalysisResult Analysis = Analyzer.analyze(Merged);
  const core::ObjectAnalysis *Hot = Analysis.findObject("rec");
  if (!Hot) {
    std::cerr << "rec not surfaced\n";
    return 1;
  }

  core::SplitPlan Split = core::makeSplitPlan(*Hot, &Layout);
  core::SplitPlan Reorder = core::makeReorderPlan(*Hot, Layout);
  transform::FieldMap SplitMap(Layout, Split);
  transform::FieldMap ReorderMap(Layout, Reorder);

  auto Reordered = buildProgram(ReorderMap, N, Reps);
  auto SplitProg = buildProgram(SplitMap, N, Reps);

  runtime::RunResult RBase = run(*Base, false);
  runtime::RunResult RReorder = run(*Reordered, false);
  runtime::RunResult RSplit = run(*SplitProg, false);
  if (RBase.ReturnValues != RReorder.ReturnValues ||
      RBase.ReturnValues != RSplit.ReturnValues) {
    std::cerr << "layout change altered program results!\n";
    return 1;
  }

  std::cout << "Ablation: structure splitting vs field reordering on a "
               "two-line (128 B) record\n\n";
  std::cout << "inferred structure size: " << Hot->StructSize
            << " B; reordered layout (hot first):\n  "
            << ReorderMap.getGroupLayout(0).toString() << "\n\n";

  TablePrinter Table;
  Table.setHeader({"Layout", "Mcycles", "Speedup", "L1 misses"});
  auto Row = [&](const char *Name, const runtime::RunResult &R) {
    Table.addRow({Name, formatDouble(R.ElapsedCycles / 1e6, 1),
                  formatTimes(static_cast<double>(RBase.ElapsedCycles) /
                              R.ElapsedCycles),
                  std::to_string(R.Misses[0])});
  };
  Row("original (f0 and f9 on different lines)", RBase);
  Row("reordered (hot cluster first)", RReorder);
  Row("split (per-cluster arrays)", RSplit);
  Table.print(std::cout);
  std::cout << "\n(reordering halves the hot loop's line footprint "
               "without changing allocations; splitting also drops the "
               "cold bytes and wins)\n";
  return 0;
}
