//===- bench/ext_thread_scaling.cpp - Scalability check --------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// The paper's scalability claim (Secs. 4.4/5.1): per-thread collection
// without synchronization, offline reduction-tree merge, and advice
// that is independent of thread count. This bench runs CLOMP with 1 to
// 16 worker threads (the paper's machine has 16 cores), verifies the
// Fig. 11 advice at every width, and reports the per-thread profile
// sizes and the merge cost.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "core/Advice.h"
#include "ir/ProgramBuilder.h"
#include "profile/MergeTree.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <chrono>
#include <iostream>

using namespace structslim;
using ir::Reg;

namespace {

/// CLOMP-shaped program parameterized by worker count.
struct ScaledClomp {
  std::unique_ptr<ir::Program> P;
  uint32_t MainId = 0;
  uint32_t WorkerId = 0;
};

ScaledClomp buildScaled(runtime::Machine &M, int64_t N, unsigned Threads,
                        int64_t Reps) {
  N -= N % Threads;
  int64_t PartSize = N / Threads;
  uint64_t Mailbox = M.defineStatic("scaled_shared", 64);

  ScaledClomp Out;
  Out.P = std::make_unique<ir::Program>();
  ir::Function &Main = Out.P->addFunction("main", 0);
  Out.MainId = Main.Id;
  {
    ir::ProgramBuilder B(*Out.P, Main);
    B.setLine(100);
    Reg Bytes = B.constI(N * 32);
    Reg Zones = B.alloc(Bytes, "_Zone");
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(106);
      B.store(I, Zones, I, 32, 0, 8);                  // zoneId
      B.store(I, Zones, I, 32, 8, 8);                  // partId
      B.store(B.andI(I, 7), Zones, I, 32, 16, 8);      // value
      B.store(B.addI(I, 1), Zones, I, 32, 24, 8);      // nextZone
      B.setLine(100);
    });
    Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
    B.store(Zones, Mb, ir::NoReg, 1, 0, 8);
    B.ret();
  }
  ir::Function &Worker = Out.P->addFunction("worker", 1);
  Out.WorkerId = Worker.Id;
  {
    ir::ProgramBuilder B(*Out.P, Worker);
    Reg Tid = 0;
    B.setLine(320);
    Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
    Reg Zones = B.load(Mb, ir::NoReg, 1, 0, 8);
    Reg Part = B.constI(PartSize);
    Reg Lo = B.mul(Tid, Part);
    Reg Hi = B.add(Lo, Part);
    Reg Acc = B.constI(0);
    B.setLine(328);
    B.forLoopI(0, Reps, 1, [&](Reg) {
      B.forLoop(Lo, Hi, 1, [&](Reg I) {
        B.setLine(332);
        B.accumulate(Acc, B.load(Zones, I, 32, 16, 8)); // value
        B.setLine(335);
        B.load(Zones, I, 32, 24, 8); // nextZone
        B.setLine(328);
      });
    });
    B.ret(Acc);
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 64000;
  int64_t Reps = 12;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--n=", 0) == 0)
      N = std::stoll(Arg.substr(4));
  }

  std::cout << "Scalability: CLOMP-shaped run at 1..16 worker threads "
               "(per-thread unsynchronized profiles + reduction-tree "
               "merge)\n\n";
  TablePrinter Table;
  Table.setHeader({"Threads", "Profiles", "Samples", "Merge (us)",
                   "Hot cluster", "Fig.11 advice?"});

  ir::StructLayout Layout("_Zone");
  Layout.addField("zoneId", 8);
  Layout.addField("partId", 8);
  Layout.addField("value", 8);
  Layout.addField("nextZone", 8);
  Layout.finalize();

  for (unsigned Threads : {1u, 2u, 4u, 8u, 16u}) {
    runtime::RunConfig Cfg;
    Cfg.Sampling.Period = 2000;
    runtime::ThreadedRuntime RT(Cfg);
    ScaledClomp Prog = buildScaled(RT.machine(), N, Threads, Reps);
    analysis::CodeMap Map(*Prog.P);
    RT.runPhase(*Prog.P, &Map, {runtime::ThreadSpec{Prog.MainId, {}}});
    std::vector<runtime::ThreadSpec> Workers;
    for (uint64_t T = 0; T != Threads; ++T)
      Workers.push_back(runtime::ThreadSpec{Prog.WorkerId, {T}});
    RT.runPhase(*Prog.P, &Map, Workers);
    runtime::RunResult R = RT.finish();

    size_t NumProfiles = R.Profiles.size();
    auto Begin = std::chrono::steady_clock::now();
    profile::Profile Merged =
        profile::mergeProfiles(std::move(R.Profiles), 4);
    double MergeUs = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - Begin)
                         .count();

    core::StructSlimAnalyzer Analyzer(Map);
    Analyzer.registerLayout("_Zone", Layout);
    core::AnalysisResult Result = Analyzer.analyze(Merged);
    const core::ObjectAnalysis *Hot = Result.findObject("_Zone");
    std::string HotCluster = "-";
    bool Fig11 = false;
    if (Hot) {
      core::SplitPlan Plan = core::makeSplitPlan(*Hot, &Layout);
      if (!Plan.ClusterOffsets.empty()) {
        HotCluster = "{";
        for (size_t I = 0; I != Plan.ClusterOffsets[0].size(); ++I)
          HotCluster += (I ? "," : "") +
                        std::to_string(Plan.ClusterOffsets[0][I]);
        HotCluster += "}";
        Fig11 = Plan.ClusterOffsets[0] == std::vector<uint32_t>{16, 24};
      }
    }
    Table.addRow({std::to_string(Threads), std::to_string(NumProfiles),
                  std::to_string(Merged.TotalSamples),
                  formatDouble(MergeUs, 0), HotCluster,
                  Fig11 ? "yes" : "no"});
  }
  Table.print(std::cout);
  std::cout << "\n(advice is invariant to the thread count; merging "
               "per-thread profiles is microseconds even at 16 "
               "threads)\n";
  return 0;
}
