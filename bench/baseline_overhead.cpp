//===- bench/baseline_overhead.cpp - Sec. 1/3 overhead claims --*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the overhead comparison motivating the paper (Secs. 1
// and 3): instrumentation-based profilers intercept every access and
// slow programs down by large factors (reuse distance up to 153x,
// ASLOP-style counting 4.2x, bursty sampling 3-5x), while StructSlim's
// address sampling costs ~7%. All profilers run on the same
// array-of-structures program; the reported factor is host wall-clock
// relative to the uninstrumented run. Absolute factors depend on the
// host, but the ordering — reuse-distance >> full-trace > bursty >
// block-counting >> StructSlim — is the paper's claim.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "baseline/AslopCounting.h"
#include "baseline/BurstySampling.h"
#include "baseline/FullTraceAffinity.h"
#include "baseline/ReuseDistance.h"
#include "ir/ProgramBuilder.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <functional>
#include <iostream>
#include <map>

using namespace structslim;
using ir::Reg;

namespace {

struct DemoProgram {
  std::unique_ptr<ir::Program> P;
  uint32_t Token = 0;
};

/// Fig. 1-style array-of-structures program: four 8-byte fields, one
/// loop reading a+c, another reading b+d, repeated.
DemoProgram buildDemo(int64_t N, int64_t Reps) {
  DemoProgram D;
  D.P = std::make_unique<ir::Program>();
  D.Token = D.P->makeToken("Arr");
  ir::Function &F = D.P->addFunction("main", 0);
  ir::ProgramBuilder B(*D.P, F);
  B.setLine(1);
  Reg Bytes = B.constI(N * 32);
  Reg Base = B.alloc(Bytes, "Arr", D.Token);
  B.setLine(2);
  B.forLoopI(0, N, 1, [&](Reg I) {
    B.setLine(3);
    B.store(I, Base, I, 32, 0, 8, D.Token);
    B.store(I, Base, I, 32, 8, 8, D.Token);
    B.store(I, Base, I, 32, 16, 8, D.Token);
    B.store(I, Base, I, 32, 24, 8, D.Token);
    B.setLine(2);
  });
  Reg Acc = B.constI(0);
  B.setLine(4);
  B.forLoopI(0, Reps, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(5);
      Reg A = B.load(Base, I, 32, 0, 8, D.Token);
      Reg C = B.load(Base, I, 32, 16, 8, D.Token);
      B.accumulate(Acc, B.add(A, C));
      B.setLine(4);
    });
  });
  B.setLine(7);
  B.forLoopI(0, Reps, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(8);
      Reg Bv = B.load(Base, I, 32, 8, 8, D.Token);
      Reg Dv = B.load(Base, I, 32, 24, 8, D.Token);
      B.accumulate(Acc, B.add(Bv, Dv));
      B.setLine(7);
    });
  });
  B.ret(Acc);
  return D;
}

/// Runs the demo under an optional tracer / with or without the PMU
/// profiler; returns elapsed wall seconds (and the run result).
double timedRun(const DemoProgram &D, const analysis::CodeMap &Map,
                bool AttachPmu,
                const std::function<runtime::TraceSink *(runtime::Machine &)>
                    &MakeTracer,
                runtime::RunResult *Out = nullptr) {
  runtime::RunConfig Cfg;
  Cfg.AttachProfiler = AttachPmu;
  runtime::ThreadedRuntime RT(Cfg);
  runtime::TraceSink *Tracer =
      MakeTracer ? MakeTracer(RT.machine()) : nullptr;
  auto Begin = std::chrono::steady_clock::now();
  RT.runPhase(*D.P, &Map, {runtime::ThreadSpec{D.P->getEntry(), {}}},
              Tracer);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Begin)
                    .count();
  runtime::RunResult R = RT.finish();
  if (Out)
    *Out = std::move(R);
  return Wall;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 40000;
  int64_t Reps = 24;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--n=", 0) == 0)
      N = std::stoll(Arg.substr(4));
    else if (Arg.rfind("--reps=", 0) == 0)
      Reps = std::stoll(Arg.substr(7));
  }

  DemoProgram D = buildDemo(N, Reps);
  analysis::CodeMap Map(*D.P);
  std::map<std::string, uint64_t> Sizes = {{"Arr", 32}};

  // Every configuration is timed best-of-three to de-noise wall time.
  auto BestOf3 = [](const std::function<double()> &Fn) {
    double Best = Fn();
    for (int Rep = 0; Rep != 2; ++Rep)
      Best = std::min(Best, Fn());
    return Best;
  };

  double PlainWall = 1e100;
  runtime::RunResult PlainResult;
  PlainWall = BestOf3(
      [&] { return timedRun(D, Map, false, nullptr, &PlainResult); });

  std::cout << "Profiler overhead comparison ("
            << PlainResult.MemoryAccesses << " accesses)\n"
            << "(wall factors vs the uninstrumented run; paper-reported "
               "factors for the technique alongside)\n\n";

  TablePrinter Table;
  Table.setHeader({"Profiler", "Wall factor", "Paper reports",
                   "Events seen"});

  {
    runtime::RunResult R;
    double Wall = BestOf3([&] { return timedRun(D, Map, true, nullptr, &R); });
    Table.addRow({"StructSlim (PEBS-LL sampling)",
                  formatTimes(Wall / PlainWall, 2), "~7%",
                  std::to_string(R.Samples) + " samples"});
  }
  {
    baseline::AslopProfiler Aslop(*D.P, D.Token, [] {
      ir::StructLayout L("Arr");
      L.addField("a", 8);
      L.addField("b", 8);
      L.addField("c", 8);
      L.addField("d", 8);
      L.finalize();
      return L;
    }());
    double Wall =
        timedRun(D, Map, false, [&](runtime::Machine &) { return &Aslop; });
    Table.addRow({"ASLOP-style block counting",
                  formatTimes(Wall / PlainWall, 2), "4.2x",
                  std::to_string(Aslop.getBlockEntries()) + " blocks"});
  }
  {
    std::unique_ptr<baseline::BurstySamplingProfiler> Bursty;
    double Wall = timedRun(D, Map, false, [&](runtime::Machine &M) {
      Bursty = std::make_unique<baseline::BurstySamplingProfiler>(
          Map, M.Objects, Sizes);
      return Bursty.get();
    });
    Table.addRow({"Bursty sampling", formatTimes(Wall / PlainWall, 2),
                  "3-5x",
                  std::to_string(Bursty->getAccessesRecorded()) +
                      " recorded"});
  }
  {
    std::unique_ptr<baseline::FullTraceAffinityProfiler> Full;
    double Wall = timedRun(D, Map, false, [&](runtime::Machine &M) {
      Full = std::make_unique<baseline::FullTraceAffinityProfiler>(
          Map, M.Objects, Sizes);
      return Full.get();
    });
    Table.addRow({"Full-trace frequency affinity",
                  formatTimes(Wall / PlainWall, 2), ">4x",
                  std::to_string(Full->getAccessesObserved()) +
                      " accesses"});
  }
  {
    std::unique_ptr<baseline::ReuseDistanceProfiler> Reuse;
    double Wall = timedRun(D, Map, false, [&](runtime::Machine &M) {
      Reuse = std::make_unique<baseline::ReuseDistanceProfiler>(
          M.Objects, Sizes, 1ull << 23);
      return Reuse.get();
    });
    Table.addRow({"Reuse distance (exact LRU)",
                  formatTimes(Wall / PlainWall, 2), "up to 153x",
                  std::to_string(Reuse->getAccessesObserved()) +
                      " accesses"});
  }

  Table.print(std::cout);
  return 0;
}
