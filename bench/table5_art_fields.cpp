//===- bench/table5_art_fields.cpp - Paper Table 5 -------------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 5: StructSlim's access-pattern analysis of ART,
// decomposing f1_neuron's access latency over its fields. Field R
// carries 0% because address sampling never observes an access to it
// (it is never read), exactly as the paper's footnote explains.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>
#include <map>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 1.0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  auto W = workloads::makeArt();
  workloads::DriverConfig Config;
  Config.Scale = Scale;
  transform::FieldMap Map(W->hotLayout());
  workloads::WorkloadRun Run =
      workloads::runWorkload(*W, Map, Config, /*Attach=*/true);
  core::StructSlimAnalyzer Analyzer(*Run.CodeMap);
  Analyzer.registerLayout(W->hotObjectName(), W->hotLayout());
  core::AnalysisResult Result = Analyzer.analyze(Run.Merged);

  const core::ObjectAnalysis *Hot = Result.findObject("f1_neuron");
  if (!Hot) {
    std::cerr << "analysis did not surface f1_neuron\n";
    return 1;
  }

  std::cout << "Table 5: per-field latency decomposition of ART's "
               "f1_neuron\n"
            << "object share of total latency (l_d): "
            << formatPercent(Hot->HotShare) << " (paper: 80.4%)\n"
            << "inferred structure size: " << Hot->StructSize
            << " bytes\n\n";

  const std::map<std::string, double> Paper = {
      {"I", 5.5}, {"W", 2.0}, {"X", 3.7}, {"V", 3.7},
      {"U", 7.1}, {"P", 73.3}, {"Q", 4.7}, {"R", 0.0}};

  TablePrinter Table;
  Table.setHeader({"Field", "Latency %", "Paper %", "Samples"});
  for (const char *Name : {"I", "W", "X", "V", "U", "P", "Q", "R"}) {
    const core::FieldStat *F = nullptr;
    for (const core::FieldStat &Candidate : Hot->Fields)
      if (Candidate.Name == Name)
        F = &Candidate;
    Table.addRow({Name, F ? formatPercent(F->LatencyShare) : "0.0%",
                  formatDouble(Paper.at(Name), 1) + "%",
                  F ? std::to_string(F->SampleCount) : "0"});
  }
  Table.print(std::cout);
  std::cout << "\n(R row: 0% means address sampling captured no access "
               "to R, matching the paper)\n";
  return 0;
}
