//===- bench/micro_analysis.cpp - Component microbenchmarks ----*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the pieces whose cost the paper
// argues about: the per-sample online handler (attribution + GCD), the
// per-access cache simulation, data-object lookup, profile merging via
// the reduction tree (serial vs parallel, Sec. 5.2), and interpreter
// throughput.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "cache/Hierarchy.h"
#include "ir/ProgramBuilder.h"
#include "mem/DataObjectTable.h"
#include "profile/MergeTree.h"
#include "runtime/Interpreter.h"
#include "runtime/ProfileBuilder.h"
#include "support/MathUtil.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace structslim;

// --- GCD stride arithmetic (the Eq. 2-3 hot path) -------------------------

static void BM_GcdUpdate(benchmark::State &State) {
  Rng R(1);
  std::vector<uint64_t> Diffs(1024);
  for (auto &D : Diffs)
    D = (R.nextBelow(1000) + 1) * 64;
  size_t I = 0;
  uint64_t G = 0;
  for (auto _ : State) {
    G = gcd64(G, Diffs[I++ & 1023]);
    benchmark::DoNotOptimize(G);
  }
}
BENCHMARK(BM_GcdUpdate);

// --- Cache hierarchy access -------------------------------------------------

static void BM_HierarchyAccess(benchmark::State &State) {
  cache::MemoryHierarchy H((cache::HierarchyConfig()));
  Rng R(2);
  uint64_t Range = uint64_t(State.range(0)) << 20; // MiB of footprint.
  uint64_t Addr = 0;
  for (auto _ : State) {
    Addr = (Addr + 64 + (R.next() & 0xfff)) % Range;
    benchmark::DoNotOptimize(H.access(Addr, 8, false, 0x400000));
  }
}
BENCHMARK(BM_HierarchyAccess)->Arg(1)->Arg(8)->Arg(64);

// --- Data-object lookup (per-sample data-centric attribution) --------------

static void BM_ObjectLookup(benchmark::State &State) {
  mem::DataObjectTable T;
  size_t NumObjects = static_cast<size_t>(State.range(0));
  for (size_t I = 0; I != NumObjects; ++I)
    T.addHeap("obj", 0x100000 * (I + 1), 0x80000, {I});
  Rng R(3);
  for (auto _ : State) {
    uint64_t Addr = 0x100000 * (1 + R.nextBelow(NumObjects)) +
                    R.nextBelow(0x80000);
    benchmark::DoNotOptimize(T.lookup(Addr));
  }
}
BENCHMARK(BM_ObjectLookup)->Arg(8)->Arg(128)->Arg(2048);

// --- The full online sample handler ------------------------------------------

namespace {

struct HandlerFixture {
  ir::Program P;
  std::unique_ptr<analysis::CodeMap> Map;
  mem::DataObjectTable Objects;
  uint64_t LoopIp = 0;

  HandlerFixture() {
    ir::Function &F = P.addFunction("main", 0);
    ir::ProgramBuilder B(P, F);
    B.forLoopI(0, 4, 1, [&](ir::Reg) {
      B.work(0);
      LoopIp = F.Blocks[B.currentBlock()]->Instrs.back().Ip;
    });
    B.ret();
    Map = std::make_unique<analysis::CodeMap>(P);
    Objects.addHeap("arr", 0x10000, 1 << 24, {});
  }
};

} // namespace

static void BM_SampleHandler(benchmark::State &State) {
  HandlerFixture Fx;
  runtime::ProfileBuilder Builder(*Fx.Map, Fx.Objects, 0, 10000);
  Rng R(4);
  pmu::AddressSample S;
  S.Ip = Fx.LoopIp;
  S.AccessSize = 8;
  S.Latency = 40;
  S.Served = cache::MemLevel::L3;
  for (auto _ : State) {
    S.EffAddr = 0x10000 + R.nextBelow(1 << 18) * 64;
    Builder.onSample(S);
  }
}
BENCHMARK(BM_SampleHandler);

// --- Reduction-tree profile merge (Sec. 5.2) ---------------------------------

static profile::Profile makeThreadProfile(uint32_t Tid, unsigned Streams) {
  profile::Profile P;
  P.ThreadId = Tid;
  P.SamplePeriod = 10000;
  Rng R(100 + Tid);
  for (unsigned S = 0; S != Streams; ++S) {
    uint32_t Obj = P.getOrCreateObject("obj" + std::to_string(S % 16));
    P.Objects[Obj].Name = "obj";
    profile::StreamRecord &Rec =
        P.getOrCreateStream(0x400000 + S, Obj);
    Rec.SampleCount += 10;
    Rec.LatencySum += 400;
    Rec.StrideGcd = 64 << (R.nextBelow(3));
    Rec.RepAddr = 0x10000 + S * 64;
    Rec.UniqueAddrCount = 10;
    P.TotalSamples += 10;
    P.TotalLatency += 400;
  }
  return P;
}

static void BM_MergeTree(benchmark::State &State) {
  unsigned NumProfiles = static_cast<unsigned>(State.range(0));
  unsigned Workers = static_cast<unsigned>(State.range(1));
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<profile::Profile> Profiles;
    for (unsigned T = 0; T != NumProfiles; ++T)
      Profiles.push_back(makeThreadProfile(T, 512));
    State.ResumeTiming();
    profile::Profile Merged =
        profile::mergeProfiles(std::move(Profiles), Workers);
    benchmark::DoNotOptimize(Merged.TotalSamples);
  }
}
BENCHMARK(BM_MergeTree)
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({64, 1})
    ->Args({64, 4});

// --- Interpreter throughput ----------------------------------------------------

static void BM_InterpreterThroughput(benchmark::State &State) {
  ir::Program P;
  ir::Function &F = P.addFunction("main", 0);
  ir::ProgramBuilder B(P, F);
  ir::Reg Bytes = B.constI(1 << 16);
  ir::Reg Base = B.alloc(Bytes, "arr");
  ir::Reg Acc = B.constI(0);
  B.forLoopI(0, 1 << 13, 1, [&](ir::Reg I) {
    B.accumulate(Acc, B.load(Base, I, 8, 0, 8));
  });
  B.ret(Acc);

  for (auto _ : State) {
    runtime::Machine M;
    cache::MemoryHierarchy H((cache::HierarchyConfig()));
    runtime::Interpreter I(P, M, H, nullptr, 0);
    benchmark::DoNotOptimize(I.run(0, {}));
    State.SetItemsProcessed(State.items_processed() +
                            I.getStats().Instructions);
  }
}
BENCHMARK(BM_InterpreterThroughput);

BENCHMARK_MAIN();
