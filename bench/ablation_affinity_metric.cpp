//===- bench/ablation_affinity_metric.cpp - Latency vs counts --*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the paper's latency-weighted affinity (Sec. 4.3): "unlike
// previous approaches that count the number of memory accesses, we use
// the memory access latency". This bench constructs the adversarial
// case: fields f and g are accessed together very frequently but the
// accesses are cheap (cache-resident small array), while field f is
// also accessed, less often but expensively, together with field h
// over a huge array. Frequency-based affinity (the Chilimbi-style
// baseline) pairs f with g; latency-based affinity (StructSlim) pairs
// f with h — and only the latter grouping speeds up the program.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "baseline/FullTraceAffinity.h"
#include "core/Advice.h"
#include "core/Analyzer.h"
#include "ir/ProgramBuilder.h"
#include "profile/MergeTree.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace structslim;
using ir::Reg;

namespace {

/// struct rec { long f; long g; long h; long pad; }  (32 bytes)
/// Hot loop A (cheap, frequent): touches f and g of the first few
/// elements only — always cache-resident.
/// Loop B (expensive, rarer): touches f and h across all N elements.
std::unique_ptr<ir::Program> buildAdversarial(int64_t N, int64_t HotReps,
                                              int64_t ColdReps) {
  auto P = std::make_unique<ir::Program>();
  ir::Function &F = P->addFunction("main", 0);
  ir::ProgramBuilder B(*P, F);
  B.setLine(1);
  Reg Bytes = B.constI(N * 32);
  Reg Base = B.alloc(Bytes, "rec");
  B.forLoopI(0, N, 1, [&](Reg I) {
    B.setLine(2);
    B.store(I, Base, I, 32, 0, 8);
    B.store(I, Base, I, 32, 8, 8);
    B.store(I, Base, I, 32, 16, 8);
    B.setLine(1);
  });
  Reg Acc = B.constI(0);
  // Loop A, lines 10-11: f+g over 64 elements, HotReps times.
  B.setLine(10);
  B.forLoopI(0, HotReps, 1, [&](Reg) {
    B.forLoopI(0, 64, 1, [&](Reg I) {
      B.setLine(11);
      Reg Fv = B.load(Base, I, 32, 0, 8);
      Reg Gv = B.load(Base, I, 32, 8, 8);
      B.accumulate(Acc, B.add(Fv, Gv));
      B.setLine(10);
    });
  });
  // Loop B, lines 20-21: f+h over all N elements, ColdReps times.
  B.setLine(20);
  B.forLoopI(0, ColdReps, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(21);
      Reg Fv = B.load(Base, I, 32, 0, 8);
      Reg Hv = B.load(Base, I, 32, 16, 8);
      B.accumulate(Acc, B.add(Fv, Hv));
      B.setLine(20);
    });
  });
  B.ret(Acc);
  return P;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 80000;
  int64_t HotReps = 12000; // 64 * 12000 = 768k cheap f+g pairs.
  int64_t ColdReps = 6;    // 80k * 6 = 480k expensive f+h pairs.
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--n=", 0) == 0)
      N = std::stoll(Arg.substr(4));
  }

  auto P = buildAdversarial(N, HotReps, ColdReps);
  analysis::CodeMap Map(*P);

  // StructSlim: latency-weighted affinity from address samples.
  runtime::RunConfig Cfg;
  Cfg.Sampling.Period = 2000;
  runtime::ThreadedRuntime RT(Cfg);
  baseline::FullTraceAffinityProfiler Frequency(Map, RT.machine().Objects,
                                                {{"rec", 32}});
  RT.runPhase(*P, &Map, {runtime::ThreadSpec{P->getEntry(), {}}},
              &Frequency);
  runtime::RunResult Run = RT.finish();
  profile::Profile Merged = profile::mergeProfiles(std::move(Run.Profiles));

  ir::StructLayout Layout("rec");
  Layout.addField("f", 8);
  Layout.addField("g", 8);
  Layout.addField("h", 8);
  Layout.addField("pad", 8);
  Layout.finalize();
  core::StructSlimAnalyzer Analyzer(Map);
  Analyzer.registerLayout("rec", Layout);
  core::AnalysisResult Result = Analyzer.analyze(Merged);
  const core::ObjectAnalysis *Rec = Result.findObject("rec");
  if (!Rec) {
    std::cerr << "analysis did not surface 'rec'\n";
    return 1;
  }

  auto LatencyAff = [&](const char *A, const char *B) {
    for (size_t I = 0; I != Rec->Fields.size(); ++I)
      for (size_t J = 0; J != Rec->Fields.size(); ++J)
        if (Rec->Fields[I].Name == A && Rec->Fields[J].Name == B)
          return Rec->Affinity[I][J];
    return 0.0;
  };

  std::cout << "Ablation: latency-weighted (StructSlim) vs "
               "frequency-weighted (Chilimbi-style) field affinity\n"
            << "f+g: frequent but cheap; f+h: rarer but expensive\n\n";
  TablePrinter Table;
  Table.setHeader({"Pair", "Latency-based A_ij", "Frequency-based A_ij"});
  Table.addRow({"f-g", formatDouble(LatencyAff("f", "g"), 3),
                formatDouble(Frequency.affinity("rec", 0, 8), 3)});
  Table.addRow({"f-h", formatDouble(LatencyAff("f", "h"), 3),
                formatDouble(Frequency.affinity("rec", 0, 16), 3)});
  Table.print(std::cout);

  bool LatencyPairsFH = LatencyAff("f", "h") > LatencyAff("f", "g");
  bool FrequencyPairsFG =
      Frequency.affinity("rec", 0, 8) > Frequency.affinity("rec", 0, 16);
  std::cout << "\nlatency metric pairs f with "
            << (LatencyPairsFH ? "h (correct: that is where the "
                                 "memory-stall money is)"
                               : "g")
            << "\nfrequency metric pairs f with "
            << (FrequencyPairsFG ? "g (misled by cheap cache hits)" : "h")
            << "\n";
  return 0;
}
