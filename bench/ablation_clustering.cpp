//===- bench/ablation_clustering.cpp - Clustering methods ------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the paper's clustering rule ("cluster all fields with
// high affinities" = threshold + connected components) against
// agglomerative average-linkage clustering. On clean affinity
// structures like ART's the two agree exactly; the synthetic "chain"
// case (A-B and B-C strongly affine, A-C never co-accessed) shows where
// they diverge: the transitive method fuses all three while average
// linkage keeps the unrelated pair apart. The measured speedups show
// which grouping the memory system prefers for the chain.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "core/Advice.h"
#include "ir/ProgramBuilder.h"
#include "profile/MergeTree.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>

using namespace structslim;
using ir::Reg;

namespace {

/// The chain program: struct {a, b, c, pad}; loop 1 reads a+b, loop 2
/// reads b+c, equally hot; a and c never meet.
std::unique_ptr<ir::Program> buildChain(int64_t N, int64_t Reps) {
  auto P = std::make_unique<ir::Program>();
  ir::Function &F = P->addFunction("main", 0);
  ir::ProgramBuilder B(*P, F);
  B.setLine(1);
  Reg Bytes = B.constI(N * 32);
  Reg Base = B.alloc(Bytes, "chain");
  B.forLoopI(0, N, 1, [&](Reg I) {
    B.setLine(2);
    B.store(I, Base, I, 32, 0, 8);
    B.store(I, Base, I, 32, 8, 8);
    B.store(I, Base, I, 32, 16, 8);
    B.setLine(1);
  });
  Reg Acc = B.constI(0);
  B.setLine(10);
  B.forLoopI(0, Reps, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(11);
      B.accumulate(Acc, B.add(B.load(Base, I, 32, 0, 8),
                              B.load(Base, I, 32, 8, 8)));
      B.setLine(10);
    });
  });
  B.setLine(20);
  B.forLoopI(0, Reps, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(21);
      B.accumulate(Acc, B.add(B.load(Base, I, 32, 8, 8),
                              B.load(Base, I, 32, 16, 8)));
      B.setLine(20);
    });
  });
  B.ret(Acc);
  return P;
}

std::string planText(const core::SplitPlan &Plan) {
  std::vector<std::string> Parts;
  for (const auto &Cluster : Plan.ClusterOffsets) {
    std::string S = "{";
    for (size_t I = 0; I != Cluster.size(); ++I)
      S += (I ? "," : "") + std::to_string(Cluster[I]);
    Parts.push_back(S + "}");
  }
  return join(Parts, " ");
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 0.5;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  std::cout << "Ablation: threshold (paper) vs average-linkage "
               "hierarchical clustering\n\n";

  // --- ART: both methods should produce Fig. 7. ----------------------
  {
    auto W = workloads::makeArt();
    TablePrinter Table;
    Table.setHeader({"Method", "ART clusters", "Speedup"});
    for (auto Method : {core::ClusteringMethod::Threshold,
                        core::ClusteringMethod::Hierarchical}) {
      workloads::DriverConfig Config;
      Config.Scale = Scale;
      Config.Analysis.Clustering = Method;
      workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);
      Table.addRow({Method == core::ClusteringMethod::Threshold
                        ? "threshold (paper)"
                        : "average linkage",
                    planText(R.Plan), formatTimes(R.Speedup)});
    }
    Table.print(std::cout);
    std::cout << "\n";
  }

  // --- The chain case: the methods diverge. --------------------------
  auto P = buildChain(60000, 14);
  analysis::CodeMap Map(*P);
  runtime::RunConfig RunCfg;
  RunCfg.Sampling.Period = 2000;
  runtime::ThreadedRuntime RT(RunCfg);
  RT.runPhase(*P, &Map, {runtime::ThreadSpec{P->getEntry(), {}}});
  runtime::RunResult Run = RT.finish();
  profile::Profile Merged = profile::mergeProfiles(std::move(Run.Profiles));

  ir::StructLayout Layout("chain");
  Layout.addField("a", 8);
  Layout.addField("b", 8);
  Layout.addField("c", 8);
  Layout.addField("pad", 8);
  Layout.finalize();

  std::cout << "chain case (a-b and b-c affine, a-c never together):\n";
  TablePrinter Table;
  Table.setHeader({"Method", "Clusters (offsets)"});
  for (auto Method : {core::ClusteringMethod::Threshold,
                      core::ClusteringMethod::Hierarchical}) {
    core::AnalysisConfig Cfg;
    Cfg.Clustering = Method;
    core::StructSlimAnalyzer Analyzer(Map, Cfg);
    Analyzer.registerLayout("chain", Layout);
    core::AnalysisResult Result = Analyzer.analyze(Merged);
    const core::ObjectAnalysis *Hot = Result.findObject("chain");
    if (!Hot) {
      std::cerr << "chain not surfaced\n";
      return 1;
    }
    core::SplitPlan Plan = core::makeSplitPlan(*Hot, &Layout);
    Table.addRow({Method == core::ClusteringMethod::Threshold
                      ? "threshold (paper)"
                      : "average linkage",
                  planText(Plan)});
  }
  Table.print(std::cout);
  std::cout << "\n(threshold clustering is transitive and fuses the "
               "whole chain; average linkage keeps a and c apart "
               "unless their own affinity supports the merge)\n";
  return 0;
}
