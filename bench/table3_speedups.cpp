//===- bench/table3_speedups.cpp - Paper Table 3 ---------------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 3: end-to-end speedup from structure splitting
// guided by StructSlim, plus StructSlim's measurement overhead, for the
// seven benchmarks of Table 2. Execution time is simulated cycles
// (interpreter cost model); overhead is both simulated (sampling
// interrupt + online handler cycles) and host wall-clock.
//
// Flags: --scale=<f>   working-set scale (default 0.5)
//        --advice      also print each benchmark's splitting advice
//                      (the paper's Figs. 7-13)
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "core/Report.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>
#include <string>

using namespace structslim;

namespace {

struct PaperRow {
  const char *Name;
  double Speedup;
  double OverheadPct;
};

constexpr PaperRow PaperTable3[] = {
    {"179.ART", 1.37, 2.05},  {"462.libquantum", 1.09, 2.79},
    {"TSP", 1.09, 2.42},      {"Mser", 1.03, 2.95},
    {"CLOMP 1.2", 1.25, 16.1}, {"Health", 1.12, 18.3},
    {"NN", 1.33, 5.21},
};

double paperSpeedup(const std::string &Name) {
  for (const PaperRow &Row : PaperTable3)
    if (Name == Row.Name)
      return Row.Speedup;
  return 0;
}

double paperOverhead(const std::string &Name) {
  for (const PaperRow &Row : PaperTable3)
    if (Name == Row.Name)
      return Row.OverheadPct;
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 0.5;
  bool PrintAdvice = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
    else if (Arg == "--advice")
      PrintAdvice = true;
  }

  std::cout << "Table 3: speedups from StructSlim-guided structure "
               "splitting and measurement overhead\n"
            << "(simulated memory hierarchy; paper values shown for "
               "shape comparison)\n\n";

  TablePrinter Table;
  Table.setHeader({"Benchmark", "Original (Mcycles)", "Split (Mcycles)",
                   "Speedup", "Paper speedup", "Overhead (sim)",
                   "Overhead (paper)", "Samples"});

  std::vector<double> Speedups;
  for (const auto &W : workloads::makePaperWorkloads()) {
    workloads::DriverConfig Config;
    Config.Scale = Scale;
    workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);
    Speedups.push_back(R.Speedup);

    Table.addRow({W->name(),
                  formatDouble(R.OriginalDetached.ElapsedCycles / 1e6, 1),
                  formatDouble(R.SplitDetached.ElapsedCycles / 1e6, 1),
                  formatTimes(R.Speedup), formatTimes(paperSpeedup(W->name())),
                  formatPercent(R.OverheadSim),
                  formatDouble(paperOverhead(W->name()), 2) + "%",
                  std::to_string(R.OriginalProfiled.Samples)});

    if (PrintAdvice) {
      std::cout << "--- " << W->name() << " (" << W->suite() << ") ---\n";
      if (const core::ObjectAnalysis *Hot =
              R.Analysis.findObject(W->hotObjectName())) {
        ir::StructLayout Layout = W->hotLayout();
        std::cout << core::renderAdviceText(R.Plan, *Hot, &Layout);
        std::cout << core::renderFieldTable(*Hot) << "\n";
      } else {
        std::cout << "(hot object not found by the analysis)\n";
      }
    }
  }

  Table.addRow({"average", "", "", formatTimes(geomean(Speedups)), "1.18x",
                "", "7.1%", ""});
  Table.print(std::cout);
  return 0;
}
