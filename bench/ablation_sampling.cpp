//===- bench/ablation_sampling.cpp - Sampling-period ablation --*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Ablation of the paper's fixed choice of one sample per 10,000
// accesses (Sec. 6): sweeps the sampling period on ART and reports, per
// period, the measurement overhead, the number of samples, whether the
// structure size is still inferred exactly, and whether the advice
// still matches Fig. 7's six clusters. Shows the overhead/robustness
// trade-off that motivates the paper's setting.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 0.6;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  auto W = workloads::makeArt();
  ir::StructLayout Layout = W->hotLayout();

  std::cout << "Ablation: sampling period vs overhead and advice "
               "quality on ART (paper fixes 1/10000)\n\n";
  TablePrinter Table;
  Table.setHeader({"Period", "Samples", "Overhead (sim)", "Struct size",
                   "Clusters", "Fig.7 advice?", "Speedup"});

  for (uint64_t Period :
       {250ull, 1000ull, 4000ull, 10000ull, 40000ull, 160000ull}) {
    workloads::DriverConfig Config;
    Config.Scale = Scale;
    Config.Run.Sampling.Period = Period;
    workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);

    const core::ObjectAnalysis *Hot = R.Analysis.findObject("f1_neuron");
    uint64_t Size = Hot ? Hot->StructSize : 0;
    size_t Clusters = R.Plan.ClusterOffsets.size();
    // Fig. 7: {P} {I,U} {X,Q} {V} {W} {R} — six clusters with the I/U
    // and X/Q pairings.
    bool Fig7 = Clusters == 6 && Size == 64;
    if (Fig7) {
      auto Has = [&](std::vector<uint32_t> Want) {
        for (const auto &C : R.Plan.ClusterOffsets)
          if (C == Want)
            return true;
        return false;
      };
      Fig7 = Has({0, 32}) && Has({16, 48}) && Has({40});
    }
    Table.addRow({std::to_string(Period),
                  std::to_string(R.OriginalProfiled.Samples),
                  formatPercent(R.OverheadSim),
                  Size ? std::to_string(Size) + " B" : "-",
                  std::to_string(Clusters), Fig7 ? "yes" : "no",
                  formatTimes(R.Speedup)});
  }
  Table.print(std::cout);
  std::cout << "\n(denser sampling buys nothing once the advice is "
               "stable; sparser sampling eventually starves cold "
               "fields of samples)\n";
  return 0;
}
