//===- bench/micro_interpreter.cpp - Interpreter core throughput -*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the two interpreter cores on a profiler-shaped hot
// loop: the reference core (direct ir::Instr walk, one switch per
// instruction) against the predecoded core (threaded dispatch over
// dense op arrays, fused pairs, flat frames, page-pointer cache). Each
// core runs the same program with the profiler detached (the pure
// simulation path the paper's Fig. 4/5 baselines pay) and attached
// (PMU sampling + online attribution on top). The cores must agree bit
// for bit — this bench asserts counters, return values, and serialized
// profile bytes — and the interesting output is instructions per
// second and the predecoded/reference speedup.
//
// Writes BENCH_interp.json (override the path with argv[1]).
//
//===----------------------------------------------------------------------===//

#include "HostFeatures.h"
#include "analysis/CodeMap.h"
#include "ir/ProgramBuilder.h"
#include "profile/ProfileIO.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <fstream>
#include <iostream>

using namespace structslim;
using ir::Reg;

namespace {

struct Built {
  std::unique_ptr<ir::Program> P;
  uint32_t MainId = 0;
  uint32_t WorkerId = 0;
};

/// The hot loop: Reps passes over an N-slot array, each iteration a
/// mix the predecoder cares about — indexed loads behind an AddI
/// (fusable), a compare-and-branch (fusable), a strided store, and a
/// helper call every pass to keep the frame stack warm.
Built build(runtime::Machine &M, int64_t N, int64_t Reps) {
  uint64_t Mailbox = M.defineStatic("interp_shared", 64);
  Built Out;
  Out.P = std::make_unique<ir::Program>();

  ir::Function &Main = Out.P->addFunction("main", 0);
  Out.MainId = Main.Id;
  {
    ir::ProgramBuilder B(*Out.P, Main);
    B.setLine(100);
    Reg Bytes = B.constI(N * 8);
    Reg Arr = B.alloc(Bytes, "_Hot");
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(101);
      B.store(B.mulI(I, 0x9e3779b9), Arr, I, 8, 0, 8);
      B.setLine(100);
    });
    Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
    B.store(Arr, Mb, ir::NoReg, 1, 0, 8);
    B.ret();
  }

  ir::Function &Worker = Out.P->addFunction("hotloop", 1);
  Out.WorkerId = Worker.Id;
  {
    ir::ProgramBuilder B(*Out.P, Worker);
    Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
    Reg Arr = B.load(Mb, ir::NoReg, 1, 0, 8);
    Reg Acc = B.constI(0);
    B.setLine(200);
    B.forLoopI(0, Reps, 1, [&](Reg Pass) {
      B.forLoopI(0, N, 1, [&](Reg I) {
        B.setLine(201);
        Reg J = B.addI(I, 1);          // AddI+Load: fused pair
        Reg V = B.load(Arr, I, 8, 0, 8);
        Reg W = B.load(Arr, J, 8, 0, 4);
        // Murmur-style mixing: the arithmetic tail a compiled hot loop
        // carries between its memory accesses.
        Reg H = B.bxor(V, W);
        H = B.mulI(H, 0x5bd1e995);
        H = B.bxor(H, B.shr(H, B.constI(15)));
        H = B.addI(H, 0x2545f491);
        H = B.bxor(H, B.shl(H, B.constI(3)));
        H = B.mulI(H, 0x9e3779b1);
        H = B.bxor(H, B.shr(H, B.constI(13)));
        B.accumulate(Acc, H);
        B.ifThen(B.cmpLt(W, B.constI(1 << 16)), // CmpLt+CondBr: fused
                 [&] { B.accumulate(Acc, B.constI(3)); });
        B.store(B.add(V, Pass), Arr, I, 8, 0, 8);
        B.setLine(200);
      });
    });
    B.ret(Acc);
  }
  return Out;
}

struct Measured {
  runtime::RunResult R;
  double Seconds = 0;
};

Measured runOnce(bool Reference, bool Attach, runtime::EngineKind Engine,
                 int64_t N, int64_t Reps,
                 runtime::PipelineKind Pipeline = runtime::PipelineKind::Auto) {
  runtime::RunConfig Cfg;
  Cfg.Engine = Engine;
  Cfg.ReferenceInterpreter = Reference;
  Cfg.AttachProfiler = Attach;
  Cfg.Pipeline = Pipeline;
  runtime::ThreadedRuntime RT(Cfg);
  Built Program = build(RT.machine(), N, Reps);
  analysis::CodeMap Map(*Program.P);
  RT.runPhase(*Program.P, &Map, {runtime::ThreadSpec{Program.MainId, {}}});
  auto Begin = std::chrono::steady_clock::now();
  RT.runPhase(*Program.P, &Map, {runtime::ThreadSpec{Program.WorkerId, {0}}});
  auto End = std::chrono::steady_clock::now();
  Measured Out;
  Out.R = RT.finish();
  Out.Seconds = std::chrono::duration<double>(End - Begin).count();
  return Out;
}

/// Best of \p Trials runs: simulated results are deterministic (and
/// asserted identical across trials), wall time takes the minimum to
/// shed scheduler noise.
Measured runBest(bool Reference, bool Attach, runtime::EngineKind Engine,
                 int64_t N, int64_t Reps, int Trials = 3,
                 runtime::PipelineKind Pipeline = runtime::PipelineKind::Auto) {
  Measured Best = runOnce(Reference, Attach, Engine, N, Reps, Pipeline);
  for (int T = 1; T < Trials; ++T) {
    Measured M = runOnce(Reference, Attach, Engine, N, Reps, Pipeline);
    if (M.Seconds < Best.Seconds)
      Best = M;
  }
  return Best;
}

bool identical(const runtime::RunResult &A, const runtime::RunResult &B) {
  if (A.ElapsedCycles != B.ElapsedCycles || A.TotalCycles != B.TotalCycles ||
      A.Instructions != B.Instructions ||
      A.MemoryAccesses != B.MemoryAccesses || A.Samples != B.Samples ||
      A.ReturnValues != B.ReturnValues)
    return false;
  for (unsigned Level = 0; Level != 3; ++Level)
    if (A.Accesses[Level] != B.Accesses[Level] ||
        A.Misses[Level] != B.Misses[Level])
      return false;
  if (A.Profiles.size() != B.Profiles.size())
    return false;
  for (size_t I = 0; I != A.Profiles.size(); ++I)
    if (profile::profileToString(A.Profiles[I]) !=
        profile::profileToString(B.Profiles[I]))
      return false;
  return true;
}

double ips(const Measured &M) {
  return M.Seconds > 0 ? static_cast<double>(M.R.Instructions) / M.Seconds
                       : 0.0;
}

} // namespace

int main(int argc, char **argv) {
  // --smoke: one small trial per config, for CI. A JSON path may
  // follow or precede it.
  bool Smoke = false;
  const char *JsonPath = "BENCH_interp.json";
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--smoke")
      Smoke = true;
    else
      JsonPath = argv[I];
  }
  const int64_t N = Smoke ? 1 << 10 : 1 << 14;
  const int64_t Reps = Smoke ? 8 : 160;
  const int Trials = Smoke ? 1 : 3;

  std::cout << "Interpreter core throughput (hot loop, " << N << " slots x "
            << Reps << " passes)\n\n";

  // Detached: the pure-simulation path.
  Measured RefDet = runBest(/*Reference=*/true, /*Attach=*/false,
                            runtime::EngineKind::Serial, N, Reps, Trials);
  Measured PreDet =
      runBest(false, false, runtime::EngineKind::Serial, N, Reps, Trials);
  // Attached: sampling + online attribution on top. The serial engine
  // defaults to the decoupled sample pipeline (PipelineKind::Auto);
  // the forced-inline run is the checked oracle it must reproduce.
  Measured RefAtt =
      runBest(true, true, runtime::EngineKind::Serial, N, Reps, Trials);
  Measured PreAtt =
      runBest(false, true, runtime::EngineKind::Serial, N, Reps, Trials);
  Measured PreAttInline =
      runBest(false, true, runtime::EngineKind::Serial, N, Reps, Trials,
              runtime::PipelineKind::Inline);
  // The predecoded ops also feed the parallel engine's buffered path.
  Measured ParAtt =
      runBest(false, true, runtime::EngineKind::Parallel, N, Reps, Trials);

  bool Identical = identical(RefDet.R, PreDet.R) &&
                   identical(RefAtt.R, PreAtt.R) &&
                   identical(PreAtt.R, PreAttInline.R) &&
                   identical(RefAtt.R, ParAtt.R);

  double SpeedupDet = ips(RefDet) > 0 ? ips(PreDet) / ips(RefDet) : 0.0;
  double SpeedupAtt = ips(RefAtt) > 0 ? ips(PreAtt) / ips(RefAtt) : 0.0;
  double SpeedupPipe =
      ips(PreAttInline) > 0 ? ips(PreAtt) / ips(PreAttInline) : 0.0;

  TablePrinter Table;
  Table.setHeader({"config", "seconds", "Minstr/s", "speedup"});
  Table.addRow({"reference detached", formatDouble(RefDet.Seconds, 3),
                formatDouble(ips(RefDet) / 1e6, 1), "1.00x"});
  Table.addRow({"predecoded detached", formatDouble(PreDet.Seconds, 3),
                formatDouble(ips(PreDet) / 1e6, 1),
                formatDouble(SpeedupDet, 2) + "x"});
  Table.addRow({"reference attached", formatDouble(RefAtt.Seconds, 3),
                formatDouble(ips(RefAtt) / 1e6, 1), "1.00x"});
  Table.addRow({"predecoded attached", formatDouble(PreAtt.Seconds, 3),
                formatDouble(ips(PreAtt) / 1e6, 1),
                formatDouble(SpeedupAtt, 2) + "x"});
  Table.addRow({"  inline-sim oracle", formatDouble(PreAttInline.Seconds, 3),
                formatDouble(ips(PreAttInline) / 1e6, 1),
                formatDouble(SpeedupPipe, 2) + "x pipe"});
  Table.addRow({"predecoded parallel", formatDouble(ParAtt.Seconds, 3),
                formatDouble(ips(ParAtt) / 1e6, 1), "-"});
  Table.print(std::cout);

  std::ofstream Json(JsonPath);
  Json << "{\n  \"bench\": \"micro_interpreter\",\n"
       << hostFeatureJsonFields()
       << "  \"slots\": " << N << ",\n  \"reps\": " << Reps << ",\n"
       << "  \"instructions\": " << RefDet.R.Instructions << ",\n"
       << "  \"reference_detached_ips\": " << ips(RefDet) << ",\n"
       << "  \"predecoded_detached_ips\": " << ips(PreDet) << ",\n"
       << "  \"speedup_detached\": " << SpeedupDet << ",\n"
       << "  \"reference_attached_ips\": " << ips(RefAtt) << ",\n"
       << "  \"predecoded_attached_ips\": " << ips(PreAtt) << ",\n"
       << "  \"speedup_attached\": " << SpeedupAtt << ",\n"
       << "  \"pipeline_inline_attached_ips\": " << ips(PreAttInline) << ",\n"
       << "  \"pipeline_speedup\": " << SpeedupPipe << ",\n"
       << "  \"pipeline_queue_depth_max\": " << PreAtt.R.QueueDepthMax << ",\n"
       << "  \"pipeline_producer_stalls\": " << PreAtt.R.ProducerStalls
       << ",\n"
       << "  \"pipeline_consumer_batches\": " << PreAtt.R.ConsumerBatches
       << ",\n"
       << "  \"smoke\": " << (Smoke ? "true" : "false") << ",\n"
       << "  \"identical\": " << (Identical ? "true" : "false") << "\n}\n";

  if (!Identical) {
    std::cerr << "\nFAIL: predecoded core diverged from the reference\n";
    return 1;
  }
  std::cout << "\nAll configurations bit-identical. JSON: " << JsonPath
            << "\n";
  return 0;
}
