//===- bench/fig5_spec_overhead.cpp - Paper Figure 5 -----------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 5: StructSlim's runtime overhead when monitoring
// SPEC CPU2006 (synthetic stand-in kernels; see DESIGN.md). The
// paper's average is ~4.2%.
//
//===----------------------------------------------------------------------===//

#include "OverheadSuite.h"

int main(int argc, char **argv) {
  return structslim::benchutil::runOverheadSuite(
      structslim::workloads::specCpu2006Suite(),
      "Figure 5: StructSlim overhead on the SPEC CPU2006 suite "
      "(synthetic stand-ins)",
      4.2, argc, argv);
}
