//===- bench/table6_art_loops.cpp - Paper Table 6 --------------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 6: StructSlim's code-centric view of ART — per
// monitored loop, the share of f1_neuron's latency and the set of
// fields accessed in that loop. Loop names are source-line ranges from
// the interval analysis on the binary.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>
#include <map>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 1.0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  auto W = workloads::makeArt();
  workloads::DriverConfig Config;
  Config.Scale = Scale;
  transform::FieldMap Map(W->hotLayout());
  workloads::WorkloadRun Run =
      workloads::runWorkload(*W, Map, Config, /*Attach=*/true);
  core::StructSlimAnalyzer Analyzer(*Run.CodeMap);
  Analyzer.registerLayout(W->hotObjectName(), W->hotLayout());
  core::AnalysisResult Result = Analyzer.analyze(Run.Merged);

  const core::ObjectAnalysis *Hot = Result.findObject("f1_neuron");
  if (!Hot) {
    std::cerr << "analysis did not surface f1_neuron\n";
    return 1;
  }

  // Paper Table 6 rows for side-by-side comparison.
  const std::map<std::string, std::pair<double, const char *>> Paper = {
      {"131-138", {1.59, "U, P"}},   {"559-570", {8.42, "X, Q"}},
      {"553-554", {1.98, "W"}},      {"545-548", {10.83, "U, I"}},
      {"615-616", {56.57, "P"}},     {"607-608", {14.40, "P"}},
      {"589-592", {2.25, "U, P"}},   {"575-576", {3.72, "V"}},
      {"1015-1016", {0.24, "I"}},
  };

  std::cout << "Table 6: latency per monitored loop of ART and the "
               "fields accessed there\n\n";
  TablePrinter Table;
  Table.setHeader({"Loop (lines)", "Latency %", "Fields", "Paper %",
                   "Paper fields"});
  for (const core::LoopStat &L : Hot->Loops) {
    std::vector<std::string> Names;
    for (uint32_t Offset : L.Offsets) {
      const core::FieldStat *F = Hot->fieldAtOffset(Offset);
      Names.push_back(F ? F->Name : "off" + std::to_string(Offset));
    }
    auto It = Paper.find(L.LoopName);
    Table.addRow({L.LoopName, formatPercent(L.LatencyShare),
                  join(Names, ", "),
                  It != Paper.end() ? formatDouble(It->second.first, 2) + "%"
                                    : "-",
                  It != Paper.end() ? It->second.second : "-"});
  }
  Table.print(std::cout);
  std::cout << "\n(the bus sweep at 700-703 belongs to a different data "
               "object and the paper's table lists f1_neuron loops "
               "only)\n";
  return 0;
}
