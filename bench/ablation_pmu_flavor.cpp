//===- bench/ablation_pmu_flavor.cpp - PEBS-LL vs IBS ----------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// StructSlim runs on Intel PEBS-LL and AMD IBS (paper Table 1 / Sec. 2)
// — the two mechanisms that report latency. They differ in coverage:
// PEBS-LL samples loads only, IBS samples stores too. This ablation
// runs ART under both flavors and compares what the analysis sees:
// store-only fields (ART writes every field during initialization, but
// R is never *read*) appear under IBS yet stay invisible under
// PEBS-LL, while the splitting advice — driven by the hot load loops —
// comes out the same.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>
#include <set>

using namespace structslim;

namespace {

struct FlavorResult {
  core::AnalysisResult Analysis;
  core::SplitPlan Plan;
  uint64_t Samples = 0;
};

FlavorResult runFlavor(const workloads::Workload &W, pmu::PmuFlavor Flavor,
                       double Scale) {
  workloads::DriverConfig Config;
  Config.Scale = Scale;
  Config.Run.Sampling.Flavor = Flavor;
  transform::FieldMap Map(W.hotLayout());
  workloads::WorkloadRun Run =
      workloads::runWorkload(W, Map, Config, /*Attach=*/true);
  core::StructSlimAnalyzer Analyzer(*Run.CodeMap, Config.Analysis);
  ir::StructLayout Layout = W.hotLayout();
  Analyzer.registerLayout(W.hotObjectName(), Layout);
  FlavorResult Out;
  Out.Analysis = Analyzer.analyze(Run.Merged);
  if (const core::ObjectAnalysis *Hot =
          Out.Analysis.findObject(W.hotObjectName()))
    Out.Plan = core::makeSplitPlan(*Hot, &Layout);
  Out.Samples = Run.Merged.TotalSamples;
  return Out;
}

std::set<std::string> observedFields(const FlavorResult &R,
                                     const std::string &Object) {
  std::set<std::string> Names;
  if (const core::ObjectAnalysis *Hot = R.Analysis.findObject(Object))
    for (const core::FieldStat &F : Hot->Fields)
      Names.insert(F.Name);
  return Names;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 0.6;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  auto W = workloads::makeArt();
  FlavorResult Pebs = runFlavor(*W, pmu::PmuFlavor::PebsLoadLatency, Scale);
  FlavorResult Ibs = runFlavor(*W, pmu::PmuFlavor::IbsOp, Scale);

  std::cout << "Ablation: PEBS-LL (loads only) vs IBS (loads + stores) "
               "on ART\n\n";
  TablePrinter Table;
  Table.setHeader({"Flavor", "Samples", "Fields observed", "Clusters",
                   "R visible?"});
  auto Row = [&](const char *Name, const FlavorResult &R) {
    auto Fields = observedFields(R, "f1_neuron");
    std::vector<std::string> Sorted(Fields.begin(), Fields.end());
    Table.addRow({Name, std::to_string(R.Samples),
                  join(Sorted, " "),
                  std::to_string(R.Plan.ClusterOffsets.size()),
                  Fields.count("R") ? "yes (store samples)" : "no"});
  };
  Row("PEBS-LL", Pebs);
  Row("IBS", Ibs);
  Table.print(std::cout);

  bool SameHotPair =
      !Pebs.Plan.ClusterOffsets.empty() &&
      !Ibs.Plan.ClusterOffsets.empty() &&
      Pebs.Plan.ClusterOffsets[0] == Ibs.Plan.ClusterOffsets[0];
  std::cout << "\nhottest cluster identical under both flavors: "
            << (SameHotPair ? "yes" : "no")
            << "\n(IBS additionally observes write-only activity — "
               "e.g. initialization stores — which PEBS-LL cannot "
               "see; the advice driven by hot load loops agrees)\n";
  return 0;
}
