//===- bench/micro_analyzer.cpp - Offline analyzer throughput -*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Host-side throughput of the parallel offline analyzer: a synthetic
// merged profile with many hot objects (each with many streams over
// many loops and fields) is analyzed at jobs=1/2/4/8. Output must be
// byte-identical across job counts — this bench asserts it by
// comparing the full JSON renderings — and the interesting numbers are
// wall-clock analysis time and speedup. On a single-core host the
// parallel path can only add overhead, which the JSON records honestly
// alongside the host's hardware_concurrency.
//
// Writes BENCH_analyzer.json (override the path with argv[1]).
// --smoke shrinks the profile and rep count for CI.
//
//===----------------------------------------------------------------------===//

#include "HostFeatures.h"
#include "core/Report.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>

using namespace structslim;
using namespace structslim::core;
using structslim::profile::Profile;
using structslim::profile::StreamRecord;

namespace {

/// Builds a merged-profile shape that stresses the analyzer's hot
/// paths: \p Objects data objects, each with \p Streams streams spread
/// over \p Loops loops and \p Fields distinct field offsets, so the
/// per-object affinity pass sees dense loop/field interaction.
Profile makeProfile(unsigned Objects, unsigned Streams, unsigned Loops,
                    unsigned Fields) {
  Rng R(0xbe9c4);
  Profile Prof;
  Prof.SamplePeriod = 10000;
  for (unsigned Obj = 0; Obj != Objects; ++Obj) {
    std::string Name = "obj" + std::to_string(Obj);
    uint32_t Idx = Prof.getOrCreateObject(Name);
    uint64_t Start = 0x100000ull * (Obj + 1);
    profile::ObjectAgg &Agg = Prof.Objects[Idx];
    Agg.Name = Name;
    Agg.Start = Start;
    Agg.Size = 1 << 20;
    for (unsigned S = 0; S != Streams; ++S) {
      uint64_t Latency = 1 + R.nextBelow(500);
      Agg.SampleCount += 1;
      Agg.LatencySum += Latency;
      Prof.TotalSamples += 1;
      Prof.TotalLatency += Latency;
      StreamRecord &Rec = Prof.getOrCreateStream(
          (static_cast<uint64_t>(Obj) << 24) | S, Idx);
      Rec.LoopId = static_cast<int32_t>(R.nextBelow(Loops));
      Rec.AccessSize = 8;
      Rec.SampleCount += 1;
      Rec.LatencySum += Latency;
      Rec.UniqueAddrCount = 16;
      Rec.StrideGcd = 8ull * Fields;
      Rec.ObjectStart = Start;
      Rec.RepAddr = Start + 8 * R.nextBelow(Fields) +
                    8ull * Fields * R.nextBelow(64);
    }
  }
  return Prof;
}

struct Measured {
  AnalysisResult Result;
  double Seconds = 0;
};

Measured runOnce(const Profile &Prof, unsigned Jobs, unsigned Reps) {
  AnalysisConfig Config;
  Config.TopObjects = ~0u; // Analyze everything: the fan-out is the point.
  Config.MinObjectShare = 0.0;
  Config.Jobs = Jobs;
  StructSlimAnalyzer Analyzer(Config);
  Measured Out;
  auto Begin = std::chrono::steady_clock::now();
  for (unsigned Rep = 0; Rep != Reps; ++Rep)
    Out.Result = Analyzer.analyze(Prof);
  auto End = std::chrono::steady_clock::now();
  Out.Seconds = std::chrono::duration<double>(End - Begin).count() / Reps;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  const char *JsonPath = "BENCH_analyzer.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      JsonPath = argv[I];
  }

  const unsigned Objects = Smoke ? 16 : 64;
  const unsigned Streams = Smoke ? 64 : 512;
  const unsigned Loops = 24;
  const unsigned Fields = 32;
  const unsigned Reps = Smoke ? 2 : 5;
  const unsigned HostCores = std::thread::hardware_concurrency();

  std::cout << "Offline analyzer scaling (host hardware_concurrency="
            << HostCores << ", " << Objects << " objects x " << Streams
            << " streams, " << Loops << " loops, " << Fields
            << " fields)\n\n";

  Profile Prof = makeProfile(Objects, Streams, Loops, Fields);

  AnalysisConfig RenderConfig;
  auto JsonOf = [&](const AnalysisResult &R) {
    // Fixed stats: timings are the one legitimately varying part.
    return renderJsonReport(R, Prof, RenderConfig, ReportStats(), {});
  };

  Measured Serial = runOnce(Prof, 1, Reps);
  std::string SerialJson = JsonOf(Serial.Result);

  TablePrinter Table;
  Table.setHeader({"jobs", "analyze s", "speedup", "objects/s", "identical"});
  Table.addRow({"1", formatDouble(Serial.Seconds, 4), "1.00x",
                formatDouble(Objects / Serial.Seconds, 0), "yes"});

  std::ofstream Json(JsonPath);
  Json << "{\n  \"bench\": \"micro_analyzer\",\n"
       << hostFeatureJsonFields()
       << "  \"host_hardware_concurrency\": " << HostCores << ",\n"
       << "  \"objects\": " << Objects << ",\n"
       << "  \"streams_per_object\": " << Streams << ",\n"
       << "  \"loops\": " << Loops << ",\n"
       << "  \"fields\": " << Fields << ",\n  \"points\": [\n"
       << "    {\"jobs\": 1, \"analyze_seconds\": " << Serial.Seconds
       << ", \"speedup\": 1.0, \"identical\": true},\n";

  bool AllIdentical = true;
  const unsigned Widths[] = {2, 4, 8};
  for (size_t W = 0; W != sizeof(Widths) / sizeof(*Widths); ++W) {
    unsigned Jobs = Widths[W];
    Measured Parallel = runOnce(Prof, Jobs, Reps);
    bool Identical = JsonOf(Parallel.Result) == SerialJson;
    AllIdentical = AllIdentical && Identical;
    double Speedup =
        Parallel.Seconds > 0 ? Serial.Seconds / Parallel.Seconds : 0.0;
    Table.addRow({std::to_string(Jobs), formatDouble(Parallel.Seconds, 4),
                  formatDouble(Speedup, 2) + "x",
                  formatDouble(Objects / Parallel.Seconds, 0),
                  Identical ? "yes" : "NO"});
    Json << "    {\"jobs\": " << Jobs
         << ", \"analyze_seconds\": " << Parallel.Seconds
         << ", \"speedup\": " << Speedup
         << ", \"identical\": " << (Identical ? "true" : "false") << "}"
         << (W + 1 != sizeof(Widths) / sizeof(*Widths) ? "," : "") << "\n";
  }
  Json << "  ]\n}\n";
  Table.print(std::cout);

  if (!AllIdentical) {
    std::cerr << "\nFAIL: parallel analysis diverged from serial results\n";
    return 1;
  }
  std::cout << "\nAll job counts byte-identical to serial. JSON: " << JsonPath
            << "\n";
  return 0;
}
