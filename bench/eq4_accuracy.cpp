//===- bench/eq4_accuracy.cpp - Paper Eq. 4 validation ---------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Validates the paper's formal accuracy claim for the GCD stride
// algorithm (Sec. 4.2.2, Eq. 4): with k unique sampled addresses the
// probability of recovering the exact stride, claimed > 99% for
// k >= 10. Reports, per k:
//   - Eq. 4 exactly as printed,
//   - the paper's closed-form lower bound (1 - sum p^-k),
//   - a residue-exact variant (all residue classes, not just
//     multiples of p),
//   - Monte Carlo ground truth for strides 1 and 64.
//
//===----------------------------------------------------------------------===//

#include "core/AccuracyModel.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace structslim;
using namespace structslim::core;

int main(int argc, char **argv) {
  uint64_t N = 4096;
  unsigned Trials = 20000;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--n=", 0) == 0)
      N = std::stoull(Arg.substr(4));
    else if (Arg.rfind("--trials=", 0) == 0)
      Trials = static_cast<unsigned>(std::stoul(Arg.substr(9)));
  }

  std::cout << "Eq. 4: GCD stride-recovery accuracy vs sample count k "
               "(n = " << N << " addresses per stream)\n"
            << "paper claim: k >= 10 gives > 99% accuracy\n\n";

  TablePrinter Table;
  Table.setHeader({"k", "Eq.4 (paper)", "lower bound", "residue-exact",
                   "measured s=1", "measured s=64"});
  Rng R(0xE44);
  for (uint64_t K : {2, 3, 4, 5, 6, 8, 10, 12, 16}) {
    double Paper = eq4Accuracy(N, K);
    double Bound = eq4LowerBound(K);
    double Exact = exactAccuracy(N, K);
    double M1 = core::measureAccuracy(N, K, 1, Trials, R);
    double M64 = core::measureAccuracy(N, K, 64, Trials, R);
    Table.addRow({std::to_string(K), formatPercent(Paper, 2),
                  formatPercent(Bound, 2), formatPercent(Exact, 2),
                  formatPercent(M1, 2), formatPercent(M64, 2)});
  }
  Table.print(std::cout);
  std::cout
      << "\nNotes: for k <= 3 the printed formula is far from the truth "
         "(with k = 2 the stride equals the single sampled difference, "
         "so the real accuracy is ~2/n); from k >= 4 on, the "
         "residue-exact model and the measurement agree and the paper's "
         "k >= 10 => >99% claim holds.\n";
  return 0;
}
