//===- bench/micro_reservoir.cpp - Bounded sample buffer cost -*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Host-side cost of the latency-weighted A-ExpJ sample reservoir: a
// synthetic PMU sample stream (90% cache-hit latencies, 10% heavy
// memory-latency samples — the skew the weighting exists for) is
// offered to reservoirs of several capacities and to a direct sink
// baseline. The interesting numbers are offers/second (the saturated
// reservoir must reject most samples with one add + compare), the
// kept-weight fraction (the weighting should keep far more latency
// mass than a capacity/seen head-sample would), and the peak resident
// bytes (the memory bound the subsystem exists to provide — constant
// in stream length). Determinism is asserted: two runs under the same
// seed keep byte-identical survivor sets.
//
// Writes BENCH_reservoir.json (override the path with argv[1]).
// --smoke shrinks the stream and rep count for CI.
//
//===----------------------------------------------------------------------===//

#include "HostFeatures.h"
#include "runtime/SampleReservoir.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

using namespace structslim;

namespace {

/// Terminal sink: folds delivered samples into a checksum (order
/// sensitive) so survivor sets can be compared across runs.
class ChecksumSink : public pmu::SampleSink {
public:
  void onSample(const pmu::AddressSample &S) override {
    Checksum = Checksum * 0x100000001b3ULL ^ S.EffAddr ^
               (static_cast<uint64_t>(S.Latency) << 32);
    ++Delivered;
    WeightDelivered += S.Latency ? S.Latency : 1;
  }
  uint64_t Checksum = 0xcbf29ce484222325ULL;
  uint64_t Delivered = 0;
  uint64_t WeightDelivered = 0;
};

/// The synthetic stream: mostly cheap L1-latency samples, a heavy
/// tail of memory-latency ones (the mass the reservoir must keep).
pmu::AddressSample makeSample(uint64_t I, Rng &R) {
  pmu::AddressSample S;
  S.Ip = 0x400000 + I % 64;
  S.EffAddr = 0x10000 + I * 8;
  S.AccessSize = 8;
  S.Latency = R.nextBelow(10) == 0 ? 200 + R.nextBelow(200)
                                   : 1 + R.nextBelow(8);
  return S;
}

struct Measured {
  double Seconds = 0;
  uint64_t Delivered = 0;
  uint64_t Evictions = 0;
  uint64_t WeightSeen = 0;
  uint64_t WeightKept = 0;
  uint64_t PeakBytes = 0;
  uint64_t Checksum = 0;
};

Measured runOnce(uint64_t Capacity, uint64_t Offers, unsigned Reps) {
  Measured Out;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    Rng Gen(0x5eed);
    ChecksumSink Sink;
    auto Begin = std::chrono::steady_clock::now();
    if (Capacity == 0) {
      // Baseline: the unbounded path, samples go straight through.
      for (uint64_t I = 0; I != Offers; ++I)
        Sink.onSample(makeSample(I, Gen));
      Out.Seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Begin)
                         .count();
      Out.Delivered = Sink.Delivered;
      Out.WeightSeen = Out.WeightKept = Sink.WeightDelivered;
      Out.Checksum = Sink.Checksum;
      continue;
    }
    runtime::SampleReservoir Rsvr(Sink, Capacity, /*Seed=*/0x5eed);
    for (uint64_t I = 0; I != Offers; ++I)
      Rsvr.onSample(makeSample(I, Gen));
    Rsvr.flush();
    Out.Seconds += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();
    Out.Delivered = Sink.Delivered;
    Out.Evictions = Rsvr.getEvictions();
    Out.WeightSeen = Rsvr.getWeightSeen();
    Out.WeightKept = Rsvr.getWeightKept();
    Out.PeakBytes = Rsvr.getPeakBytes();
    Out.Checksum = Sink.Checksum;
  }
  Out.Seconds /= Reps;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  const char *JsonPath = "BENCH_reservoir.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      JsonPath = argv[I];
  }

  const uint64_t Offers = Smoke ? 100000 : 2000000;
  const unsigned Reps = Smoke ? 2 : 5;
  const uint64_t Capacities[] = {0, 256, 1024, 4096};

  std::cout << "Weighted reservoir cost (" << Offers
            << " offers/run, heavy-tail latencies)\n\n";

  TablePrinter Table;
  Table.setHeader({"capacity", "offer s", "Moffers/s", "kept", "weight kept",
                   "peak bytes", "deterministic"});

  std::ofstream Json(JsonPath);
  Json << "{\n  \"bench\": \"micro_reservoir\",\n"
       << hostFeatureJsonFields() << "  \"offers\": " << Offers
       << ",\n  \"points\": [\n";

  bool AllDeterministic = true;
  uint64_t BoundedPeakMax = 0;
  for (size_t C = 0; C != sizeof(Capacities) / sizeof(*Capacities); ++C) {
    uint64_t Capacity = Capacities[C];
    Measured M = runOnce(Capacity, Offers, Reps);
    Measured Again = runOnce(Capacity, Offers, /*Reps=*/1);
    bool Deterministic = M.Checksum == Again.Checksum;
    AllDeterministic = AllDeterministic && Deterministic;
    if (Capacity)
      BoundedPeakMax = std::max(BoundedPeakMax, M.PeakBytes);
    double WeightFrac =
        M.WeightSeen ? double(M.WeightKept) / double(M.WeightSeen) : 1.0;
    Table.addRow(
        {Capacity ? std::to_string(Capacity) : "off (direct)",
         formatDouble(M.Seconds, 4),
         formatDouble(Offers / M.Seconds / 1e6, 2), std::to_string(M.Delivered),
         formatDouble(100.0 * WeightFrac, 1) + "%",
         std::to_string(M.PeakBytes), Deterministic ? "yes" : "NO"});
    Json << "    {\"capacity\": " << Capacity
         << ", \"offer_seconds\": " << M.Seconds
         << ", \"offers_per_second\": " << uint64_t(Offers / M.Seconds)
         << ", \"delivered\": " << M.Delivered
         << ", \"evictions\": " << M.Evictions
         << ", \"weight_kept_fraction\": " << WeightFrac
         << ", \"peak_resident_sample_bytes\": " << M.PeakBytes
         << ", \"deterministic\": " << (Deterministic ? "true" : "false")
         << "}" << (C + 1 != sizeof(Capacities) / sizeof(*Capacities) ? ","
                                                                      : "")
         << "\n";
  }
  Json << "  ]\n}\n";
  Table.print(std::cout);

  if (!AllDeterministic) {
    std::cerr << "\nFAIL: same-seed runs diverged\n";
    return 1;
  }
  std::cout << "\nSame-seed runs byte-identical; peak resident bytes <= "
            << BoundedPeakMax << " for every bounded capacity. JSON: "
            << JsonPath << "\n";
  return 0;
}
