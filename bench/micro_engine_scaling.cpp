//===- bench/micro_engine_scaling.cpp - Engine throughput ------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Host-side scaling of the parallel phase engine: a CLOMP-shaped
// multithreaded phase (constant total work) is run at 1/2/4/8
// simulated threads under the serial round-robin engine and the
// OS-thread parallel engine. The two must agree bit for bit — this
// bench asserts it — and the interesting output is wall-clock
// throughput. On a multicore host the parallel engine should reach
// >= 2x at 4 simulated threads; on a single-core host it can only add
// overhead, which the JSON records honestly alongside the host's
// hardware_concurrency.
//
// Writes BENCH_engine.json (override the path with argv[1]).
//
//===----------------------------------------------------------------------===//

#include "HostFeatures.h"
#include "analysis/CodeMap.h"
#include "ir/ProgramBuilder.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

using namespace structslim;
using ir::Reg;

namespace {

struct Built {
  std::unique_ptr<ir::Program> P;
  uint32_t MainId = 0;
  uint32_t WorkerId = 0;
};

/// CLOMP-shaped phase: workers chase value/nextZone over partitions of
/// a shared zone array, Reps passes each, total work independent of
/// the thread count.
Built build(runtime::Machine &M, int64_t N, unsigned Threads, int64_t Reps) {
  N -= N % Threads;
  int64_t PartSize = N / Threads;
  uint64_t Mailbox = M.defineStatic("engine_shared", 64);

  Built Out;
  Out.P = std::make_unique<ir::Program>();
  ir::Function &Main = Out.P->addFunction("main", 0);
  Out.MainId = Main.Id;
  {
    ir::ProgramBuilder B(*Out.P, Main);
    B.setLine(100);
    Reg Bytes = B.constI(N * 32);
    Reg Zones = B.alloc(Bytes, "_Zone");
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(101);
      B.store(B.andI(I, 7), Zones, I, 32, 16, 8); // value
      B.store(B.addI(I, 1), Zones, I, 32, 24, 8); // nextZone
      B.setLine(100);
    });
    Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
    B.store(Zones, Mb, ir::NoReg, 1, 0, 8);
    B.ret();
  }
  ir::Function &Worker = Out.P->addFunction("worker", 1);
  Out.WorkerId = Worker.Id;
  {
    ir::ProgramBuilder B(*Out.P, Worker);
    Reg Tid = 0;
    Reg Mb = B.constI(static_cast<int64_t>(Mailbox));
    Reg Zones = B.load(Mb, ir::NoReg, 1, 0, 8);
    Reg Lo = B.mul(Tid, B.constI(PartSize));
    Reg Hi = B.add(Lo, B.constI(PartSize));
    Reg Acc = B.constI(0);
    B.setLine(200);
    B.forLoopI(0, Reps, 1, [&](Reg) {
      B.forLoop(Lo, Hi, 1, [&](Reg I) {
        B.setLine(201);
        Reg V = B.load(Zones, I, 32, 16, 8);
        B.accumulate(Acc, V);
        Reg Next = B.load(Zones, I, 32, 24, 8);
        B.accumulate(Acc, Next);
        B.setLine(200);
      });
    });
    B.ret(Acc);
  }
  return Out;
}

struct Measured {
  runtime::RunResult R;
  double Seconds = 0;
};

Measured runOnce(runtime::EngineKind Engine, unsigned Threads, int64_t N,
                 int64_t Reps) {
  runtime::RunConfig Cfg;
  Cfg.Engine = Engine;
  // A larger slice amortizes the round barrier; determinism holds for
  // any quantum as long as both engines use the same one.
  Cfg.Quantum = 2048;
  runtime::ThreadedRuntime RT(Cfg);
  Built Program = build(RT.machine(), N, Threads, Reps);
  analysis::CodeMap Map(*Program.P);
  RT.runPhase(*Program.P, &Map, {runtime::ThreadSpec{Program.MainId, {}}});
  std::vector<runtime::ThreadSpec> Workers;
  for (uint64_t T = 0; T != Threads; ++T)
    Workers.push_back(runtime::ThreadSpec{Program.WorkerId, {T}});
  auto Begin = std::chrono::steady_clock::now();
  RT.runPhase(*Program.P, &Map, Workers);
  auto End = std::chrono::steady_clock::now();
  Measured Out;
  Out.R = RT.finish();
  Out.Seconds = std::chrono::duration<double>(End - Begin).count();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_engine.json";
  const int64_t N = 1 << 16;
  const int64_t Reps = 24;
  const unsigned HostCores = std::thread::hardware_concurrency();
  // The engine's OS-thread count: STRUCTSLIM_THREADS when set (explicit
  // oversubscription — N workers time-share the host's cores),
  // otherwise hardware_concurrency. Identity never depends on it, but
  // wall-clock speedups do, so the JSON records both values.
  const unsigned WorkerThreads = support::ThreadPool::defaultThreadCount();
  const bool Oversubscribed = WorkerThreads > (HostCores ? HostCores : 1);
  const bool SingleCore = HostCores <= 1;

  std::cout << "Parallel engine scaling (host hardware_concurrency="
            << HostCores << ", effective worker threads=" << WorkerThreads
            << (std::getenv("STRUCTSLIM_THREADS") ? " [STRUCTSLIM_THREADS]"
                                                  : "")
            << ", constant total work)\n";
  if (SingleCore)
    std::cout << "WARNING: single-core host — the parallel engine can only\n"
              << "time-share one core, so speedups below measure scheduling\n"
              << "overhead, not scaling. Treat them as a lower bound.\n";
  if (Oversubscribed)
    std::cout << "note: " << WorkerThreads << " worker threads oversubscribe "
              << HostCores << " core(s) (STRUCTSLIM_THREADS)\n";
  std::cout << "\n";

  TablePrinter Table;
  Table.setHeader({"threads", "serial s", "parallel s", "speedup",
                   "Maccess/s par", "identical", "oversub"});
  std::ofstream Json(JsonPath);
  Json << "{\n  \"bench\": \"micro_engine_scaling\",\n"
       << hostFeatureJsonFields()
       << "  \"host_hardware_concurrency\": " << HostCores << ",\n"
       << "  \"effective_worker_threads\": " << WorkerThreads << ",\n"
       << "  \"oversubscribed\": " << (Oversubscribed ? "true" : "false")
       << ",\n"
       << "  \"single_core_host_warning\": " << (SingleCore ? "true" : "false")
       << ",\n"
       << "  \"total_elements\": " << N << ",\n"
       << "  \"reps\": " << Reps << ",\n  \"points\": [\n";

  bool AllIdentical = true;
  const unsigned Widths[] = {1, 2, 4, 8};
  for (size_t W = 0; W != sizeof(Widths) / sizeof(*Widths); ++W) {
    unsigned Threads = Widths[W];
    Measured Serial = runOnce(runtime::EngineKind::Serial, Threads, N, Reps);
    Measured Parallel =
        runOnce(runtime::EngineKind::Parallel, Threads, N, Reps);
    // This point runs `Threads` OS workers (plus lane consumers when
    // the decoupled pipeline engaged); flag it individually when the
    // workers alone already exceed the host's cores, so readers can
    // discount its speedup without consulting the global warning.
    bool PointOversubscribed = Threads > (HostCores ? HostCores : 1);
    // Whether the *per-lane* pipeline ran the multithreaded phase (the
    // serial main phase decouples under Auto regardless, so the run's
    // ConsumerBatches alone cannot distinguish the two): Auto engages
    // lanes only when a parallel phase actually ran on a multi-thread
    // worker budget (mode 0 holds for this bench's hierarchy).
    bool LanesEngaged = Parallel.R.ParallelPhases > 0 && WorkerThreads > 1;

    bool Identical =
        Serial.R.ElapsedCycles == Parallel.R.ElapsedCycles &&
        Serial.R.TotalCycles == Parallel.R.TotalCycles &&
        Serial.R.Samples == Parallel.R.Samples &&
        Serial.R.MemoryAccesses == Parallel.R.MemoryAccesses &&
        Serial.R.Misses[0] == Parallel.R.Misses[0] &&
        Serial.R.Misses[1] == Parallel.R.Misses[1] &&
        Serial.R.Misses[2] == Parallel.R.Misses[2] &&
        Serial.R.ReturnValues == Parallel.R.ReturnValues;
    AllIdentical = AllIdentical && Identical;

    double Speedup = Parallel.Seconds > 0 ? Serial.Seconds / Parallel.Seconds
                                          : 0.0;
    double MAccess =
        Parallel.Seconds > 0
            ? static_cast<double>(Parallel.R.MemoryAccesses) / 1e6 /
                  Parallel.Seconds
            : 0.0;
    Table.addRow({std::to_string(Threads), formatDouble(Serial.Seconds, 3),
                  formatDouble(Parallel.Seconds, 3),
                  formatDouble(Speedup, 2) + "x",
                  formatDouble(MAccess, 1),
                  Identical ? "yes" : "NO",
                  PointOversubscribed ? "yes" : "no"});

    Json << "    {\"threads\": " << Threads
         << ", \"serial_seconds\": " << Serial.Seconds
         << ", \"parallel_seconds\": " << Parallel.Seconds
         << ", \"speedup\": " << Speedup
         << ", \"identical\": " << (Identical ? "true" : "false")
         << ", \"oversubscribed\": "
         << (PointOversubscribed ? "true" : "false")
         << ", \"decoupled_lanes\": " << (LanesEngaged ? "true" : "false")
         << "}"
         << (W + 1 != sizeof(Widths) / sizeof(*Widths) ? "," : "") << "\n";
  }
  Json << "  ]\n}\n";
  Table.print(std::cout);

  if (!AllIdentical) {
    std::cerr << "\nFAIL: parallel engine diverged from serial results\n";
    return 1;
  }
  std::cout << "\nAll widths bit-identical across engines. JSON: " << JsonPath
            << "\n";
  return 0;
}
