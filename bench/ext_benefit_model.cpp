//===- bench/ext_benefit_model.cpp - Predicted vs measured -----*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Validates the what-if benefit estimator: for every paper benchmark,
// predicts the split speedup from the profile alone (no transform, no
// re-run) and compares it against the measured end-to-end speedup.
// MemoryShare is derived per benchmark from the profiled run (sampled
// latency scaled by the sampling period over total simulated cycles).
// The estimator should rank the benchmarks the way the measurement
// does and land within a reasonable band — it is a triage tool, not a
// simulator.
//
//===----------------------------------------------------------------------===//

#include "core/BenefitModel.h"
#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <algorithm>
#include <iostream>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 0.5;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  std::cout << "What-if benefit model: predicted (profile-only) vs "
               "measured split speedup\n\n";
  TablePrinter Table;
  Table.setHeader({"Benchmark", "Object reduction (pred)", "Mem share",
                   "Predicted speedup", "Measured speedup"});

  for (const auto &W : workloads::makePaperWorkloads()) {
    workloads::DriverConfig Config;
    Config.Scale = Scale;
    workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);
    const core::ObjectAnalysis *Hot =
        R.Analysis.findObject(W->hotObjectName());
    if (!Hot) {
      Table.addRow({W->name(), "-", "-", "-", formatTimes(R.Speedup)});
      continue;
    }
    // Sampled latency approximates 1/period of true memory latency.
    double MemCycles =
        static_cast<double>(R.Analysis.TotalLatency) *
        static_cast<double>(Config.Run.Sampling.Period);
    double MemShare = std::min(
        1.0, MemCycles / static_cast<double>(
                             R.OriginalDetached.TotalCycles));
    core::BenefitEstimate Est =
        core::estimateSplitBenefit(*Hot, R.Plan, MemShare);
    Table.addRow({W->name(),
                  formatPercent(Est.ObjectLatencyReduction),
                  formatPercent(MemShare),
                  formatTimes(Est.PredictedSpeedup),
                  formatTimes(R.Speedup)});
  }
  Table.print(std::cout);
  std::cout << "\n(the estimate uses only the profile: per-field "
               "latency, PEBS serving-level mix, and the plan's new "
               "element sizes)\n";
  return 0;
}
