//===- bench/fig6_affinity_graph.cpp - Paper Figure 6 ----------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 6: the affinity graph StructSlim emits for ART's
// f1_neuron structure (Graphviz dot, one subgraph cluster per suggested
// new structure), plus the full affinity matrix and the Fig. 7 split.
// The paper highlights affinity(I, U) = 0.86, a high X-Q affinity, and
// affinity(P, U) = 0.05 despite P and U sharing two loops.
//
//===----------------------------------------------------------------------===//

#include "core/Advice.h"
#include "core/Report.h"
#include "support/Format.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>

using namespace structslim;

int main(int argc, char **argv) {
  double Scale = 1.0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  auto W = workloads::makeArt();
  workloads::DriverConfig Config;
  Config.Scale = Scale;
  transform::FieldMap Map(W->hotLayout());
  workloads::WorkloadRun Run =
      workloads::runWorkload(*W, Map, Config, /*Attach=*/true);
  core::StructSlimAnalyzer Analyzer(*Run.CodeMap);
  ir::StructLayout Layout = W->hotLayout();
  Analyzer.registerLayout(W->hotObjectName(), Layout);
  core::AnalysisResult Result = Analyzer.analyze(Run.Merged);
  const core::ObjectAnalysis *Hot = Result.findObject("f1_neuron");
  if (!Hot) {
    std::cerr << "analysis did not surface f1_neuron\n";
    return 1;
  }

  std::cout << "Figure 6: affinity graph for ART's f1_neuron\n\n";
  std::cout << core::renderAffinityMatrix(*Hot) << "\n";

  auto Affinity = [&](const char *A, const char *B) {
    for (size_t I = 0; I != Hot->Fields.size(); ++I)
      for (size_t J = 0; J != Hot->Fields.size(); ++J)
        if (Hot->Fields[I].Name == A && Hot->Fields[J].Name == B)
          return Hot->Affinity[I][J];
    return -1.0;
  };
  std::cout << "affinity(I, U) = " << formatDouble(Affinity("I", "U"), 2)
            << "  (paper: 0.86)\n";
  std::cout << "affinity(X, Q) = " << formatDouble(Affinity("X", "Q"), 2)
            << "  (paper: high)\n";
  std::cout << "affinity(P, U) = " << formatDouble(Affinity("P", "U"), 2)
            << "  (paper: 0.05)\n\n";

  std::cout << core::affinityGraphDot(*Hot) << "\n";

  core::SplitPlan Plan = core::makeSplitPlan(*Hot, &Layout);
  std::cout << "Figure 7: the resulting split\n"
            << core::renderAdviceText(Plan, *Hot, &Layout);
  return 0;
}
