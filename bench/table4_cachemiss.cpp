//===- bench/table4_cachemiss.cpp - Paper Table 4 --------------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 4: per-level cache miss reduction after the
// StructSlim-guided structure split, measured with the hierarchy's
// event counters (the hardware-performance-counter role).
//
// Flags: --scale=<f>  working-set scale (default 0.5)
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/TablePrinter.h"
#include "workloads/Driver.h"
#include "workloads/Registry.h"

#include <iostream>
#include <string>

using namespace structslim;

namespace {

struct PaperRow {
  const char *Name;
  double L1, L2, L3; // Percent reductions from the paper.
};

constexpr PaperRow PaperTable4[] = {
    {"179.ART", 46.5, 51.1, 5.5},   {"462.libquantum", 49.0, 82.6, -637.9},
    {"TSP", 13.3, 19.9, 30.7},      {"Mser", 8.3, 8.4, 36.7},
    {"CLOMP 1.2", 15.5, 26.4, -2.3}, {"Health", 66.7, 90.8, -35.8},
    {"NN", 87.2, 98.0, 9.3},
};

const PaperRow *paperRow(const std::string &Name) {
  for (const PaperRow &Row : PaperTable4)
    if (Name == Row.Name)
      return &Row;
  return nullptr;
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 0.5;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--scale=", 0) == 0)
      Scale = std::stod(Arg.substr(8));
  }

  std::cout << "Table 4: cache miss reduction after structure splitting\n"
            << "(negative = more misses; the paper attributes its "
               "negative L3 rows to noise on cache-resident runs)\n\n";

  TablePrinter Table;
  Table.setHeader({"Benchmark", "L1 reduction", "L2 reduction",
                   "L3 reduction", "paper L1", "paper L2", "paper L3"});

  for (const auto &W : workloads::makePaperWorkloads()) {
    workloads::DriverConfig Config;
    Config.Scale = Scale;
    workloads::EndToEndResult R = workloads::runEndToEnd(*W, Config);
    const PaperRow *Paper = paperRow(W->name());
    Table.addRow({W->name(), formatPercent(R.MissReduction[0]),
                  formatPercent(R.MissReduction[1]),
                  formatPercent(R.MissReduction[2]),
                  formatDouble(Paper->L1, 1) + "%",
                  formatDouble(Paper->L2, 1) + "%",
                  formatDouble(Paper->L3, 1) + "%"});
  }
  Table.print(std::cout);
  return 0;
}
