//===- bench/fig4_rodinia_overhead.cpp - Paper Figure 4 --------*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 4: StructSlim's runtime overhead when monitoring
// the Rodinia suite (synthetic stand-in kernels; see DESIGN.md). The
// paper's average is ~8.2%.
//
//===----------------------------------------------------------------------===//

#include "OverheadSuite.h"

int main(int argc, char **argv) {
  return structslim::benchutil::runOverheadSuite(
      structslim::workloads::rodiniaSuite(),
      "Figure 4: StructSlim overhead on the Rodinia suite "
      "(synthetic stand-ins)",
      8.2, argc, argv);
}
