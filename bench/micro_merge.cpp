//===- bench/micro_merge.cpp - Profile ingest + merge throughput -*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the shard ingestion pipeline (paper Sec. 5.2): a
// synthetic many-thread run writes N profile shards to disk in both
// the v2 text format and the v3 binary format, then measures
//
//  - the pre-PR baseline: v2 text decode + string-keyed adjacent-pair
//    tree merge, single-threaded;
//  - the current pipeline (loadAndMergeProfiles): v3 decode + interned
//    allocation-free merge, streamed, at jobs=1/2/4;
//  - raw decode throughput of v2 vs v3 for the same profiles.
//
// Every configuration must produce byte-identical merged profiles —
// the bench asserts it by comparing serialized results — and the
// headline number is the single-core (jobs=1) speedup over the
// baseline at the largest shard count. Peak resident decoded profiles
// are reported as the memory proxy: the streaming loader holds O(jobs)
// shards, the baseline holds all N.
//
// Writes BENCH_merge.json (override the path with argv[1]).
// --smoke shrinks shard count and sizes for CI.
//
//===----------------------------------------------------------------------===//

#include "HostFeatures.h"
#include "core/Analyzer.h"
#include "core/Report.h"
#include "profile/MergeTree.h"
#include "profile/ProfileIO.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/TablePrinter.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>

using namespace structslim;
using structslim::profile::Profile;
using structslim::profile::StreamRecord;

namespace {

/// One synthetic per-thread shard. Threads share most data objects and
/// loops (that is what makes merging real work: streams collide and
/// strides sharpen across shards) plus a few thread-local heap objects.
Profile makeShard(unsigned Shard, unsigned Objects, unsigned StreamsPerObject,
                  unsigned CctNodes) {
  Rng R(0x5eed0 + Shard);
  Profile P;
  P.ThreadId = Shard;
  P.SamplePeriod = 10000;
  for (unsigned Obj = 0; Obj != Objects; ++Obj) {
    bool Shared = Obj + 4 < Objects; // Last few objects are per-thread.
    std::string Key = Shared ? "obj" + std::to_string(Obj)
                             : "heap" + std::to_string(Shard) + "_" +
                                   std::to_string(Obj);
    uint32_t Idx = P.getOrCreateObject(Key);
    uint64_t Start = 0x100000ull * (Obj + 1);
    profile::ObjectAgg &Agg = P.Objects[Idx];
    Agg.Name = Key;
    Agg.Start = Start;
    Agg.Size = 1 << 18;
    for (unsigned S = 0; S != StreamsPerObject; ++S) {
      uint64_t Latency = 1 + R.nextBelow(400);
      Agg.SampleCount += 1;
      Agg.LatencySum += Latency;
      P.TotalSamples += 1;
      P.TotalLatency += Latency;
      // Shared IPs across shards so most stream records merge rather
      // than concatenate.
      StreamRecord &Rec =
          P.getOrCreateStream((static_cast<uint64_t>(Obj) << 20) | S, Idx);
      Rec.LoopId = static_cast<int32_t>(S % 7);
      Rec.Line = 100 + S;
      Rec.AccessSize = 8;
      Rec.SampleCount += 1;
      Rec.LatencySum += Latency;
      Rec.UniqueAddrCount += 1;
      Rec.StrideGcd = 8ull * (1 + S % 4);
      Rec.ObjectStart = Start;
      // Different representative addresses per shard exercise the
      // cross-profile GCD sharpening in the merge hot loop.
      Rec.RepAddr = Start + 64ull * (1 + Shard) + 8 * (S % 16);
      Rec.LastAddr = Rec.RepAddr + Rec.StrideGcd;
      Rec.LevelSamples[S % 4] += 1;
      Rec.TlbMissSamples += S % 11 == 0;
    }
  }
  // A call tree with shared prefixes (threads run the same code).
  std::vector<uint64_t> Path;
  for (unsigned N = 0; N != CctNodes; ++N) {
    Path.clear();
    Path.push_back(0x400000 + N % 5);
    Path.push_back(0x410000 + N % 17);
    Path.push_back(0x420000 + N);
    P.Contexts.attribute(P.Contexts.intern(Path), 1 + R.nextBelow(300));
  }
  return P;
}

/// The pre-PR pipeline: decode a text shard per file, then reduce with
/// the string-keyed merge over the same adjacent-pair tree shape the
/// current code uses — so the result is byte-comparable and the
/// measured delta is decode + merge mechanics, not tree shape.
Profile baselineMerge(const std::vector<std::string> &Files) {
  std::vector<Profile> Profiles;
  Profiles.reserve(Files.size());
  for (const std::string &Path : Files) {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    auto P = profile::profileFromBytes(Bytes);
    if (!P) {
      std::cerr << "baseline failed to read " << Path << "\n";
      std::exit(1);
    }
    Profiles.push_back(std::move(*P));
  }
  while (Profiles.size() > 1) {
    size_t Pairs = Profiles.size() / 2;
    bool Odd = (Profiles.size() & 1) != 0;
    for (size_t I = 0; I != Pairs; ++I)
      Profiles[2 * I].merge(Profiles[2 * I + 1]); // String-keyed path.
    for (size_t I = 1; I != Pairs; ++I)
      Profiles[I] = std::move(Profiles[2 * I]);
    if (Odd)
      Profiles[Pairs] = std::move(Profiles.back());
    Profiles.resize(Pairs + (Odd ? 1 : 0));
  }
  return std::move(Profiles.front());
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  const char *JsonPath = "BENCH_merge.json";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
    else
      JsonPath = argv[I];
  }

  const unsigned MaxShards = Smoke ? 8 : 64;
  const unsigned Objects = Smoke ? 16 : 48;
  const unsigned StreamsPerObject = Smoke ? 16 : 48;
  const unsigned CctNodes = Smoke ? 32 : 256;
  const unsigned Reps = Smoke ? 1 : 3;
  const unsigned HostCores = std::thread::hardware_concurrency();

  std::cout << "Profile ingest + merge throughput (host hardware_concurrency="
            << HostCores << ", " << MaxShards << " shards x " << Objects
            << " objects x " << StreamsPerObject << " streams)\n\n";

  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() /
                 ("structslim_micro_merge_" + std::to_string(::getpid()));
  fs::create_directories(Dir);

  // Write every shard in both formats.
  std::vector<std::string> FilesV2, FilesV3;
  uint64_t BytesV2 = 0, BytesV3 = 0;
  for (unsigned I = 0; I != MaxShards; ++I) {
    Profile Shard = makeShard(I, Objects, StreamsPerObject, CctNodes);
    std::string V2 = profile::profileToString(Shard, 2);
    std::string V3 = profile::profileToString(Shard, 3);
    BytesV2 += V2.size();
    BytesV3 += V3.size();
    fs::path P2 = Dir / ("shard" + std::to_string(I) + ".v2.structslim");
    fs::path P3 = Dir / ("shard" + std::to_string(I) + ".v3.structslim");
    std::ofstream(P2, std::ios::binary) << V2;
    std::ofstream(P3, std::ios::binary) << V3;
    FilesV2.push_back(P2.string());
    FilesV3.push_back(P3.string());
  }

  // Raw decode throughput, v2 text vs v3 binary, same profiles.
  double DecodeV2 = 0, DecodeV3 = 0;
  {
    std::vector<std::string> BufV2, BufV3;
    for (unsigned I = 0; I != MaxShards; ++I) {
      std::ifstream In2(FilesV2[I], std::ios::binary);
      BufV2.emplace_back((std::istreambuf_iterator<char>(In2)),
                         std::istreambuf_iterator<char>());
      std::ifstream In3(FilesV3[I], std::ios::binary);
      BufV3.emplace_back((std::istreambuf_iterator<char>(In3)),
                         std::istreambuf_iterator<char>());
    }
    unsigned DecodeReps = Smoke ? 1 : 3;
    auto T2 = std::chrono::steady_clock::now();
    for (unsigned R = 0; R != DecodeReps; ++R)
      for (const std::string &B : BufV2)
        if (!profile::profileFromBytes(B))
          return 1;
    DecodeV2 = secondsSince(T2) / DecodeReps;
    auto T3 = std::chrono::steady_clock::now();
    for (unsigned R = 0; R != DecodeReps; ++R)
      for (const std::string &B : BufV3)
        if (!profile::profileFromBytes(B))
          return 1;
    DecodeV3 = secondsSince(T3) / DecodeReps;
  }

  TablePrinter Table;
  Table.setHeader({"shards", "pipeline", "jobs", "ingest+merge s", "speedup",
                   "peak resident", "identical"});

  std::vector<unsigned> ShardCounts;
  if (MaxShards >= 8)
    ShardCounts.push_back(MaxShards / 8);
  ShardCounts.push_back(MaxShards);
  const unsigned JobCounts[] = {1, 2, 4};

  std::string Json;
  Json += "{\n  \"bench\": \"micro_merge\",\n";
  Json += hostFeatureJsonFields();
  Json += "  \"host_hardware_concurrency\": " + std::to_string(HostCores) +
          ",\n";
  Json += "  \"objects_per_shard\": " + std::to_string(Objects) + ",\n";
  Json += "  \"streams_per_object\": " + std::to_string(StreamsPerObject) +
          ",\n";
  Json += "  \"decode\": {\"shards\": " + std::to_string(MaxShards) +
          ", \"v2_bytes\": " + std::to_string(BytesV2) +
          ", \"v3_bytes\": " + std::to_string(BytesV3) +
          ", \"v2_seconds\": " + std::to_string(DecodeV2) +
          ", \"v3_seconds\": " + std::to_string(DecodeV3) +
          ", \"v3_decode_speedup\": " +
          std::to_string(DecodeV3 > 0 ? DecodeV2 / DecodeV3 : 0.0) + "},\n";
  Json += "  \"points\": [\n";

  bool AllIdentical = true;
  double HeadlineSpeedup = 0;
  bool FirstPoint = true;

  for (unsigned Shards : ShardCounts) {
    std::vector<std::string> SubV2(FilesV2.begin(), FilesV2.begin() + Shards);
    std::vector<std::string> SubV3(FilesV3.begin(), FilesV3.begin() + Shards);

    // Baseline: best of Reps.
    double BaselineSeconds = 0;
    std::string Expected;
    for (unsigned R = 0; R != Reps; ++R) {
      auto T0 = std::chrono::steady_clock::now();
      Profile Merged = baselineMerge(SubV2);
      double S = secondsSince(T0);
      if (R == 0 || S < BaselineSeconds)
        BaselineSeconds = S;
      if (R == 0)
        Expected = profile::profileToString(Merged);
    }
    Table.addRow({std::to_string(Shards), "v2+string-merge", "1",
                  formatDouble(BaselineSeconds, 4), "1.00x",
                  std::to_string(Shards), "yes"});
    if (!FirstPoint)
      Json += ",\n";
    FirstPoint = false;
    Json += "    {\"shards\": " + std::to_string(Shards) +
            ", \"pipeline\": \"baseline_v2_string_merge\", \"jobs\": 1"
            ", \"ingest_merge_seconds\": " + std::to_string(BaselineSeconds) +
            ", \"speedup\": 1.0, \"peak_resident_profiles\": " +
            std::to_string(Shards) + ", \"identical\": true}";

    for (unsigned Jobs : JobCounts) {
      double BestSeconds = 0;
      profile::MergeLoadResult Load;
      for (unsigned R = 0; R != Reps; ++R) {
        profile::MergeOptions Opts;
        Opts.WorkerThreads = Jobs;
        auto T0 = std::chrono::steady_clock::now();
        profile::MergeLoadResult ThisLoad =
            profile::loadAndMergeProfiles(SubV3, Opts);
        double S = secondsSince(T0);
        if (R == 0 || S < BestSeconds) {
          BestSeconds = S;
          Load = std::move(ThisLoad);
        }
      }
      bool Identical = profile::profileToString(Load.Merged) == Expected &&
                       Load.Loaded.size() == Shards;
      AllIdentical = AllIdentical && Identical;
      double Speedup = BestSeconds > 0 ? BaselineSeconds / BestSeconds : 0.0;
      if (Shards == MaxShards && Jobs == 1)
        HeadlineSpeedup = Speedup;
      Table.addRow({std::to_string(Shards), "v3+streaming", std::to_string(Jobs),
                    formatDouble(BestSeconds, 4),
                    formatDouble(Speedup, 2) + "x",
                    std::to_string(Load.PeakResidentProfiles),
                    Identical ? "yes" : "NO"});
      Json += ",\n    {\"shards\": " + std::to_string(Shards) +
              ", \"pipeline\": \"v3_streaming\", \"jobs\": " +
              std::to_string(Jobs) +
              ", \"ingest_merge_seconds\": " + std::to_string(BestSeconds) +
              ", \"speedup\": " + std::to_string(Speedup) +
              ", \"peak_resident_profiles\": " +
              std::to_string(Load.PeakResidentProfiles) +
              ", \"identical\": " + (Identical ? "true" : "false") + "}";
    }

#if defined(__unix__) || defined(__APPLE__)
    // The same jobs=1 pipeline with mmap disabled: isolates what the
    // zero-copy mapped decode buys over buffered whole-file reads.
    {
      double BestSeconds = 0;
      profile::MergeLoadResult Load;
      ::setenv("STRUCTSLIM_NO_MMAP", "1", 1);
      for (unsigned R = 0; R != Reps; ++R) {
        profile::MergeOptions Opts;
        Opts.WorkerThreads = 1;
        auto T0 = std::chrono::steady_clock::now();
        profile::MergeLoadResult ThisLoad =
            profile::loadAndMergeProfiles(SubV3, Opts);
        double S = secondsSince(T0);
        if (R == 0 || S < BestSeconds) {
          BestSeconds = S;
          Load = std::move(ThisLoad);
        }
      }
      ::unsetenv("STRUCTSLIM_NO_MMAP");
      bool Identical = profile::profileToString(Load.Merged) == Expected &&
                       Load.Loaded.size() == Shards;
      AllIdentical = AllIdentical && Identical;
      double Speedup = BestSeconds > 0 ? BaselineSeconds / BestSeconds : 0.0;
      Table.addRow({std::to_string(Shards), "v3+buffered(no-mmap)", "1",
                    formatDouble(BestSeconds, 4),
                    formatDouble(Speedup, 2) + "x",
                    std::to_string(Load.PeakResidentProfiles),
                    Identical ? "yes" : "NO"});
      Json += ",\n    {\"shards\": " + std::to_string(Shards) +
              ", \"pipeline\": \"v3_buffered\", \"jobs\": 1"
              ", \"ingest_merge_seconds\": " + std::to_string(BestSeconds) +
              ", \"speedup\": " + std::to_string(Speedup) +
              ", \"peak_resident_profiles\": " +
              std::to_string(Load.PeakResidentProfiles) +
              ", \"identical\": " + (Identical ? "true" : "false") + "}";
    }
#endif

    // Epoch-wise accumulation (batches of 8): the incremental ingest
    // path long-running consumers use. Must cost the same as one-shot
    // and merge to the identical bytes — the stack IS the canonical
    // tree's frontier.
    {
      const size_t Batch = 8;
      double BestSeconds = 0;
      size_t PeakResident = 0;
      Profile Merged;
      for (unsigned R = 0; R != Reps; ++R) {
        profile::MergeOptions Opts;
        Opts.WorkerThreads = 1;
        auto T0 = std::chrono::steady_clock::now();
        profile::EpochAccumulator Acc(Opts);
        for (size_t I = 0; I < SubV3.size(); I += Batch) {
          size_t End = std::min(I + Batch, SubV3.size());
          Acc.addShards({SubV3.begin() + I, SubV3.begin() + End});
        }
        Profile ThisMerged = Acc.take();
        double S = secondsSince(T0);
        if (R == 0 || S < BestSeconds) {
          BestSeconds = S;
          PeakResident = Acc.peakResidentProfiles();
          Merged = std::move(ThisMerged);
        }
      }
      bool Identical = profile::profileToString(Merged) == Expected;
      AllIdentical = AllIdentical && Identical;
      double Speedup = BestSeconds > 0 ? BaselineSeconds / BestSeconds : 0.0;
      Table.addRow({std::to_string(Shards), "v3+epoch(8)", "1",
                    formatDouble(BestSeconds, 4),
                    formatDouble(Speedup, 2) + "x",
                    std::to_string(PeakResident),
                    Identical ? "yes" : "NO"});
      Json += ",\n    {\"shards\": " + std::to_string(Shards) +
              ", \"pipeline\": \"v3_epoch8\", \"jobs\": 1"
              ", \"ingest_merge_seconds\": " + std::to_string(BestSeconds) +
              ", \"speedup\": " + std::to_string(Speedup) +
              ", \"peak_resident_profiles\": " +
              std::to_string(PeakResident) +
              ", \"identical\": " + (Identical ? "true" : "false") + "}";
    }
  }
  Json += "\n  ],\n";

  // Warm vs cold analysis on the full merged profile: the incremental
  // result cache re-serves unchanged objects, so a rolling re-report
  // after an epoch that changed nothing skips analyzeObject entirely.
  // The warm rendering must be byte-identical to the cold one.
  double AnalyzeColdSeconds = 0, AnalyzeWarmSeconds = 0;
  uint64_t ObjectsReused = 0;
  bool WarmIdentical = false;
  {
    profile::MergeOptions Opts;
    Opts.WorkerThreads = 1;
    Profile Merged = profile::loadAndMergeProfiles(FilesV3, Opts).Merged;
    core::AnalysisConfig Config;
    Config.TopObjects = 1000;
    Config.MinObjectShare = 0;
    Config.Jobs = 1;
    core::StructSlimAnalyzer Analyzer(Config);
    auto TCold = std::chrono::steady_clock::now();
    core::AnalysisResult Cold = Analyzer.analyze(Merged);
    AnalyzeColdSeconds = secondsSince(TCold);
    auto TWarm = std::chrono::steady_clock::now();
    core::AnalysisResult Warm = Analyzer.analyze(Merged);
    AnalyzeWarmSeconds = secondsSince(TWarm);
    ObjectsReused = Warm.Stats.ObjectsReused;
    WarmIdentical = core::renderHotObjects(Warm) ==
                        core::renderHotObjects(Cold) &&
                    ObjectsReused == Cold.Objects.size();
    AllIdentical = AllIdentical && WarmIdentical;
    std::cout << "Warm re-analysis: cold "
              << formatDouble(AnalyzeColdSeconds, 4) << "s, warm "
              << formatDouble(AnalyzeWarmSeconds, 4) << "s ("
              << formatDouble(AnalyzeWarmSeconds > 0
                                  ? AnalyzeColdSeconds / AnalyzeWarmSeconds
                                  : 0.0,
                              2)
              << "x), " << ObjectsReused << " objects reused, identical: "
              << (WarmIdentical ? "yes" : "NO") << "\n\n";
  }
  Json += "  \"analysis\": {\"cold_seconds\": " +
          std::to_string(AnalyzeColdSeconds) +
          ", \"warm_seconds\": " + std::to_string(AnalyzeWarmSeconds) +
          ", \"warm_speedup\": " +
          std::to_string(AnalyzeWarmSeconds > 0
                             ? AnalyzeColdSeconds / AnalyzeWarmSeconds
                             : 0.0) +
          ", \"objects_reused\": " + std::to_string(ObjectsReused) +
          ", \"identical\": " + (WarmIdentical ? "true" : "false") + "},\n";
  Json += "  \"headline_single_core_speedup\": " +
          std::to_string(HeadlineSpeedup) + ",\n";
  Json += "  \"all_identical\": " + std::string(AllIdentical ? "true"
                                                             : "false") +
          "\n}\n";

  std::ofstream(JsonPath) << Json;
  Table.print(std::cout);
  std::cout << "\nv2 decode: " << formatDouble(DecodeV2, 4) << "s, v3 decode: "
            << formatDouble(DecodeV3, 4) << "s ("
            << formatDouble(DecodeV2 / (DecodeV3 > 0 ? DecodeV3 : 1), 2)
            << "x), v3 size: " << BytesV3 * 100 / (BytesV2 ? BytesV2 : 1)
            << "% of v2\n";
  std::cout << "Headline single-core speedup at " << MaxShards
            << " shards: " << formatDouble(HeadlineSpeedup, 2) << "x. JSON: "
            << JsonPath << "\n";

  std::error_code Ec;
  fs::remove_all(Dir, Ec);

  if (!AllIdentical) {
    std::cerr << "\nFAIL: merged profiles diverged across pipelines\n";
    return 1;
  }
  return 0;
}
