//===- bench/ext_regrouping.cpp - Array-regrouping extension ---*- C++ -*-===//
//
// Part of the StructSlim reproduction of Roy & Liu, CGO 2016.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the future-work extension the paper's conclusion
// announces: array regrouping. A particle kernel keeps px[] and py[]
// as separate arrays (structure splitting taken too far!) and always
// reads both per element, while charge[] is scanned in its own loop.
// Whole-object affinity (Eq. 7 on objects) pairs px with py; the
// regrouped program interleaves them into one array of {px, py} pairs
// and runs measurably faster, while charge stays standalone.
//
//===----------------------------------------------------------------------===//

#include "analysis/CodeMap.h"
#include "core/Regrouping.h"
#include "ir/ProgramBuilder.h"
#include "profile/MergeTree.h"
#include "runtime/ThreadedRuntime.h"
#include "support/Format.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace structslim;
using ir::Reg;

namespace {

/// Builds the kernel. \p Regrouped interleaves px/py into one array.
std::unique_ptr<ir::Program> buildParticles(int64_t N, int64_t Reps,
                                            bool Regrouped) {
  auto P = std::make_unique<ir::Program>();
  ir::Function &F = P->addFunction("main", 0);
  ir::ProgramBuilder B(*P, F);
  B.setLine(1);

  Reg Px, Py;
  uint32_t Scale, PxOff, PyOff;
  if (Regrouped) {
    Reg Bytes = B.constI(N * 16);
    Px = Py = B.alloc(Bytes, "pos");
    Scale = 16;
    PxOff = 0;
    PyOff = 8;
  } else {
    Reg Bytes = B.constI(N * 8);
    Px = B.alloc(Bytes, "px");
    Py = B.alloc(B.constI(N * 8), "py");
    Scale = 8;
    PxOff = PyOff = 0;
  }
  Reg ChargeBytes = B.constI(N * 8);
  Reg Charge = B.alloc(ChargeBytes, "charge");

  B.forLoopI(0, N, 1, [&](Reg I) {
    B.setLine(3);
    B.store(I, Px, I, Scale, PxOff, 8);
    B.store(B.mulI(I, 2), Py, I, Scale, PyOff, 8);
    B.store(B.andI(I, 1), Charge, I, 8, 0, 8);
    B.setLine(1);
  });

  Reg Acc = B.constI(0);
  // Hot loop, lines 10-12: px and py of the *same* (hashed) particle
  // every iteration — a neighbor-list style gather. Separate arrays pay
  // two cache misses per particle; the interleaved pair shares a line
  // and pays one.
  B.setLine(10);
  B.forLoopI(0, Reps, 1, [&](Reg) {
    Reg H = B.constI(88172645463325252ll);
    B.forLoopI(0, N, 1, [&](Reg) {
      B.setLine(11);
      Reg Mixed =
          B.addI(B.mulI(H, 6364136223846793005ll), 1442695040888963407ll);
      B.moveInto(H, Mixed);
      Reg Idx = B.rem(B.shr(H, B.constI(33)), B.constI(N));
      Reg X = B.load(Px, Idx, Scale, PxOff, 8);
      Reg Y = B.load(Py, Idx, Scale, PyOff, 8);
      B.accumulate(Acc, B.add(X, Y));
      B.work(12);
      B.setLine(10);
    });
  });
  // Charge-only loop, lines 20-22.
  B.setLine(20);
  B.forLoopI(0, Reps / 2, 1, [&](Reg) {
    B.forLoopI(0, N, 1, [&](Reg I) {
      B.setLine(21);
      Reg C = B.load(Charge, I, 8, 0, 8);
      B.accumulate(Acc, C);
      B.work(6);
      B.setLine(20);
    });
  });
  B.ret(Acc);
  return P;
}

runtime::RunResult run(const ir::Program &P, bool Attach,
                       profile::Profile *MergedOut = nullptr) {
  runtime::RunConfig Cfg;
  Cfg.AttachProfiler = Attach;
  runtime::ThreadedRuntime RT(Cfg);
  analysis::CodeMap Map(P);
  RT.runPhase(P, &Map, {runtime::ThreadSpec{P.getEntry(), {}}});
  runtime::RunResult R = RT.finish();
  if (MergedOut)
    *MergedOut = profile::mergeProfiles(std::move(R.Profiles));
  return R;
}

} // namespace

int main(int argc, char **argv) {
  int64_t N = 120000;
  int64_t Reps = 12;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--n=", 0) == 0)
      N = std::stoll(Arg.substr(4));
  }

  auto Split = buildParticles(N, Reps, /*Regrouped=*/false);
  auto Grouped = buildParticles(N, Reps, /*Regrouped=*/true);

  // 1. Profile the split (SoA) version and ask for regrouping advice.
  profile::Profile Merged;
  run(*Split, /*Attach=*/true, &Merged);
  std::cout << "Array-regrouping extension (paper Sec. 7 future work)\n\n";
  std::cout << "object affinities (Eq. 7 lifted to arrays):\n";
  TablePrinter Pairs;
  Pairs.setHeader({"Pair", "Affinity"});
  for (const core::ArrayAffinity &A : core::analyzeArrayAffinity(Merged))
    Pairs.addRow({A.A + " - " + A.B, formatDouble(A.Affinity, 3)});
  Pairs.print(std::cout);

  core::RegroupAdvice Advice = core::adviseRegrouping(Merged);
  std::cout << "\nadvice:\n";
  if (Advice.Groups.empty())
    std::cout << "  (none)\n";
  for (const auto &Group : Advice.Groups)
    std::cout << "  regroup { " << join(Group.Arrays, ", ")
              << " } into one array of structures\n";

  // 2. Apply it (the Grouped build) and measure.
  runtime::RunResult Before = run(*Split, false);
  runtime::RunResult After = run(*Grouped, false);
  if (Before.ReturnValues != After.ReturnValues) {
    std::cerr << "regrouped program computed different results!\n";
    return 1;
  }
  std::cout << "\nSoA (split px/py): " << Before.ElapsedCycles / 1000000
            << " Mcycles\nregrouped {px,py}: "
            << After.ElapsedCycles / 1000000 << " Mcycles\nspeedup: "
            << formatTimes(static_cast<double>(Before.ElapsedCycles) /
                           After.ElapsedCycles)
            << "\n";
  return 0;
}
