file(REMOVE_RECURSE
  "../bench/fig5_spec_overhead"
  "../bench/fig5_spec_overhead.pdb"
  "CMakeFiles/fig5_spec_overhead.dir/fig5_spec_overhead.cpp.o"
  "CMakeFiles/fig5_spec_overhead.dir/fig5_spec_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_spec_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
