# Empty dependencies file for fig5_spec_overhead.
# This may be replaced when dependencies are built.
