file(REMOVE_RECURSE
  "../bench/ablation_pmu_flavor"
  "../bench/ablation_pmu_flavor.pdb"
  "CMakeFiles/ablation_pmu_flavor.dir/ablation_pmu_flavor.cpp.o"
  "CMakeFiles/ablation_pmu_flavor.dir/ablation_pmu_flavor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pmu_flavor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
