# Empty dependencies file for ablation_pmu_flavor.
# This may be replaced when dependencies are built.
