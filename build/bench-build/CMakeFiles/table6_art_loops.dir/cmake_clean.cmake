file(REMOVE_RECURSE
  "../bench/table6_art_loops"
  "../bench/table6_art_loops.pdb"
  "CMakeFiles/table6_art_loops.dir/table6_art_loops.cpp.o"
  "CMakeFiles/table6_art_loops.dir/table6_art_loops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_art_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
