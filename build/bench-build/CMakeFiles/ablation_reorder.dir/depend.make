# Empty dependencies file for ablation_reorder.
# This may be replaced when dependencies are built.
