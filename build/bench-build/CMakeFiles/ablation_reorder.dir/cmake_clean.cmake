file(REMOVE_RECURSE
  "../bench/ablation_reorder"
  "../bench/ablation_reorder.pdb"
  "CMakeFiles/ablation_reorder.dir/ablation_reorder.cpp.o"
  "CMakeFiles/ablation_reorder.dir/ablation_reorder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
