file(REMOVE_RECURSE
  "../bench/micro_engine_scaling"
  "../bench/micro_engine_scaling.pdb"
  "CMakeFiles/micro_engine_scaling.dir/micro_engine_scaling.cpp.o"
  "CMakeFiles/micro_engine_scaling.dir/micro_engine_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_engine_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
