
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_engine_scaling.cpp" "bench-build/CMakeFiles/micro_engine_scaling.dir/micro_engine_scaling.cpp.o" "gcc" "bench-build/CMakeFiles/micro_engine_scaling.dir/micro_engine_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/ss_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ss_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ss_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/ss_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ss_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ss_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
