# Empty dependencies file for micro_engine_scaling.
# This may be replaced when dependencies are built.
