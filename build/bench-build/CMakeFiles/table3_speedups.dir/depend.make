# Empty dependencies file for table3_speedups.
# This may be replaced when dependencies are built.
