file(REMOVE_RECURSE
  "../bench/table3_speedups"
  "../bench/table3_speedups.pdb"
  "CMakeFiles/table3_speedups.dir/table3_speedups.cpp.o"
  "CMakeFiles/table3_speedups.dir/table3_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
