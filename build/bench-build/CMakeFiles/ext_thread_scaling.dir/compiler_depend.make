# Empty compiler generated dependencies file for ext_thread_scaling.
# This may be replaced when dependencies are built.
