file(REMOVE_RECURSE
  "../bench/ext_thread_scaling"
  "../bench/ext_thread_scaling.pdb"
  "CMakeFiles/ext_thread_scaling.dir/ext_thread_scaling.cpp.o"
  "CMakeFiles/ext_thread_scaling.dir/ext_thread_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
