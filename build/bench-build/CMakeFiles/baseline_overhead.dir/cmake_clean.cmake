file(REMOVE_RECURSE
  "../bench/baseline_overhead"
  "../bench/baseline_overhead.pdb"
  "CMakeFiles/baseline_overhead.dir/baseline_overhead.cpp.o"
  "CMakeFiles/baseline_overhead.dir/baseline_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
