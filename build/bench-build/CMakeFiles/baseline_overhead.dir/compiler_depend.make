# Empty compiler generated dependencies file for baseline_overhead.
# This may be replaced when dependencies are built.
