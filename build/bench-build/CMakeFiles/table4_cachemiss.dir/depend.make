# Empty dependencies file for table4_cachemiss.
# This may be replaced when dependencies are built.
