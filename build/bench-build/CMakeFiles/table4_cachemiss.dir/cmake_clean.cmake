file(REMOVE_RECURSE
  "../bench/table4_cachemiss"
  "../bench/table4_cachemiss.pdb"
  "CMakeFiles/table4_cachemiss.dir/table4_cachemiss.cpp.o"
  "CMakeFiles/table4_cachemiss.dir/table4_cachemiss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cachemiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
