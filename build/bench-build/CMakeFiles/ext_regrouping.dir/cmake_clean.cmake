file(REMOVE_RECURSE
  "../bench/ext_regrouping"
  "../bench/ext_regrouping.pdb"
  "CMakeFiles/ext_regrouping.dir/ext_regrouping.cpp.o"
  "CMakeFiles/ext_regrouping.dir/ext_regrouping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_regrouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
