# Empty dependencies file for ext_regrouping.
# This may be replaced when dependencies are built.
