# Empty dependencies file for table5_art_fields.
# This may be replaced when dependencies are built.
