file(REMOVE_RECURSE
  "../bench/table5_art_fields"
  "../bench/table5_art_fields.pdb"
  "CMakeFiles/table5_art_fields.dir/table5_art_fields.cpp.o"
  "CMakeFiles/table5_art_fields.dir/table5_art_fields.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_art_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
