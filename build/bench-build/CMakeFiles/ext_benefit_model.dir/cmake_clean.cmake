file(REMOVE_RECURSE
  "../bench/ext_benefit_model"
  "../bench/ext_benefit_model.pdb"
  "CMakeFiles/ext_benefit_model.dir/ext_benefit_model.cpp.o"
  "CMakeFiles/ext_benefit_model.dir/ext_benefit_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_benefit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
