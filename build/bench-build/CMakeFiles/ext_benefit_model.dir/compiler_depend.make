# Empty compiler generated dependencies file for ext_benefit_model.
# This may be replaced when dependencies are built.
