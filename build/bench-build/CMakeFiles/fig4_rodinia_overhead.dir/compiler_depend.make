# Empty compiler generated dependencies file for fig4_rodinia_overhead.
# This may be replaced when dependencies are built.
