file(REMOVE_RECURSE
  "../bench/fig4_rodinia_overhead"
  "../bench/fig4_rodinia_overhead.pdb"
  "CMakeFiles/fig4_rodinia_overhead.dir/fig4_rodinia_overhead.cpp.o"
  "CMakeFiles/fig4_rodinia_overhead.dir/fig4_rodinia_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rodinia_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
