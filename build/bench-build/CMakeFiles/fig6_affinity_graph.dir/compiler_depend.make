# Empty compiler generated dependencies file for fig6_affinity_graph.
# This may be replaced when dependencies are built.
