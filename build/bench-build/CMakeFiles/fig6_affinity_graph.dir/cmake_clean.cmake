file(REMOVE_RECURSE
  "../bench/fig6_affinity_graph"
  "../bench/fig6_affinity_graph.pdb"
  "CMakeFiles/fig6_affinity_graph.dir/fig6_affinity_graph.cpp.o"
  "CMakeFiles/fig6_affinity_graph.dir/fig6_affinity_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_affinity_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
