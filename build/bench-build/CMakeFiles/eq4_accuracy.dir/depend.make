# Empty dependencies file for eq4_accuracy.
# This may be replaced when dependencies are built.
