file(REMOVE_RECURSE
  "../bench/eq4_accuracy"
  "../bench/eq4_accuracy.pdb"
  "CMakeFiles/eq4_accuracy.dir/eq4_accuracy.cpp.o"
  "CMakeFiles/eq4_accuracy.dir/eq4_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq4_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
