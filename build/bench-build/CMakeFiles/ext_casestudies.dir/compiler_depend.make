# Empty compiler generated dependencies file for ext_casestudies.
# This may be replaced when dependencies are built.
