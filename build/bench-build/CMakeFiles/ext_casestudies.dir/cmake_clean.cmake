file(REMOVE_RECURSE
  "../bench/ext_casestudies"
  "../bench/ext_casestudies.pdb"
  "CMakeFiles/ext_casestudies.dir/ext_casestudies.cpp.o"
  "CMakeFiles/ext_casestudies.dir/ext_casestudies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_casestudies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
