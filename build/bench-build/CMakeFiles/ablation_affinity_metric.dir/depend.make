# Empty dependencies file for ablation_affinity_metric.
# This may be replaced when dependencies are built.
