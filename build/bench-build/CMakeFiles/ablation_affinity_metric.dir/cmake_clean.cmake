file(REMOVE_RECURSE
  "../bench/ablation_affinity_metric"
  "../bench/ablation_affinity_metric.pdb"
  "CMakeFiles/ablation_affinity_metric.dir/ablation_affinity_metric.cpp.o"
  "CMakeFiles/ablation_affinity_metric.dir/ablation_affinity_metric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_affinity_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
