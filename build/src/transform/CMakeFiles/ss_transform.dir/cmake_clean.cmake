file(REMOVE_RECURSE
  "CMakeFiles/ss_transform.dir/FieldMap.cpp.o"
  "CMakeFiles/ss_transform.dir/FieldMap.cpp.o.d"
  "CMakeFiles/ss_transform.dir/StructSplitter.cpp.o"
  "CMakeFiles/ss_transform.dir/StructSplitter.cpp.o.d"
  "libss_transform.a"
  "libss_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
