# Empty dependencies file for ss_transform.
# This may be replaced when dependencies are built.
