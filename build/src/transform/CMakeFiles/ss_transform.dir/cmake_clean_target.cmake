file(REMOVE_RECURSE
  "libss_transform.a"
)
