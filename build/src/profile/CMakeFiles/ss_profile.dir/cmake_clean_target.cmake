file(REMOVE_RECURSE
  "libss_profile.a"
)
