file(REMOVE_RECURSE
  "CMakeFiles/ss_profile.dir/Cct.cpp.o"
  "CMakeFiles/ss_profile.dir/Cct.cpp.o.d"
  "CMakeFiles/ss_profile.dir/MergeTree.cpp.o"
  "CMakeFiles/ss_profile.dir/MergeTree.cpp.o.d"
  "CMakeFiles/ss_profile.dir/Profile.cpp.o"
  "CMakeFiles/ss_profile.dir/Profile.cpp.o.d"
  "CMakeFiles/ss_profile.dir/ProfileIO.cpp.o"
  "CMakeFiles/ss_profile.dir/ProfileIO.cpp.o.d"
  "libss_profile.a"
  "libss_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
