
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/Cct.cpp" "src/profile/CMakeFiles/ss_profile.dir/Cct.cpp.o" "gcc" "src/profile/CMakeFiles/ss_profile.dir/Cct.cpp.o.d"
  "/root/repo/src/profile/MergeTree.cpp" "src/profile/CMakeFiles/ss_profile.dir/MergeTree.cpp.o" "gcc" "src/profile/CMakeFiles/ss_profile.dir/MergeTree.cpp.o.d"
  "/root/repo/src/profile/Profile.cpp" "src/profile/CMakeFiles/ss_profile.dir/Profile.cpp.o" "gcc" "src/profile/CMakeFiles/ss_profile.dir/Profile.cpp.o.d"
  "/root/repo/src/profile/ProfileIO.cpp" "src/profile/CMakeFiles/ss_profile.dir/ProfileIO.cpp.o" "gcc" "src/profile/CMakeFiles/ss_profile.dir/ProfileIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
