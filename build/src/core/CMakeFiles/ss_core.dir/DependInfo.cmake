
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AccuracyModel.cpp" "src/core/CMakeFiles/ss_core.dir/AccuracyModel.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/AccuracyModel.cpp.o.d"
  "/root/repo/src/core/Advice.cpp" "src/core/CMakeFiles/ss_core.dir/Advice.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/Advice.cpp.o.d"
  "/root/repo/src/core/Analyzer.cpp" "src/core/CMakeFiles/ss_core.dir/Analyzer.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/Analyzer.cpp.o.d"
  "/root/repo/src/core/BenefitModel.cpp" "src/core/CMakeFiles/ss_core.dir/BenefitModel.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/BenefitModel.cpp.o.d"
  "/root/repo/src/core/Regrouping.cpp" "src/core/CMakeFiles/ss_core.dir/Regrouping.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/Regrouping.cpp.o.d"
  "/root/repo/src/core/Report.cpp" "src/core/CMakeFiles/ss_core.dir/Report.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/Report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profile/CMakeFiles/ss_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ss_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
