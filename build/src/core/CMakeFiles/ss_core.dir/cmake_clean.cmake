file(REMOVE_RECURSE
  "CMakeFiles/ss_core.dir/AccuracyModel.cpp.o"
  "CMakeFiles/ss_core.dir/AccuracyModel.cpp.o.d"
  "CMakeFiles/ss_core.dir/Advice.cpp.o"
  "CMakeFiles/ss_core.dir/Advice.cpp.o.d"
  "CMakeFiles/ss_core.dir/Analyzer.cpp.o"
  "CMakeFiles/ss_core.dir/Analyzer.cpp.o.d"
  "CMakeFiles/ss_core.dir/BenefitModel.cpp.o"
  "CMakeFiles/ss_core.dir/BenefitModel.cpp.o.d"
  "CMakeFiles/ss_core.dir/Regrouping.cpp.o"
  "CMakeFiles/ss_core.dir/Regrouping.cpp.o.d"
  "CMakeFiles/ss_core.dir/Report.cpp.o"
  "CMakeFiles/ss_core.dir/Report.cpp.o.d"
  "libss_core.a"
  "libss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
