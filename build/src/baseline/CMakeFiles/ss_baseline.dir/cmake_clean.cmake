file(REMOVE_RECURSE
  "CMakeFiles/ss_baseline.dir/AslopCounting.cpp.o"
  "CMakeFiles/ss_baseline.dir/AslopCounting.cpp.o.d"
  "CMakeFiles/ss_baseline.dir/BurstySampling.cpp.o"
  "CMakeFiles/ss_baseline.dir/BurstySampling.cpp.o.d"
  "CMakeFiles/ss_baseline.dir/FullTraceAffinity.cpp.o"
  "CMakeFiles/ss_baseline.dir/FullTraceAffinity.cpp.o.d"
  "CMakeFiles/ss_baseline.dir/ReuseDistance.cpp.o"
  "CMakeFiles/ss_baseline.dir/ReuseDistance.cpp.o.d"
  "libss_baseline.a"
  "libss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
