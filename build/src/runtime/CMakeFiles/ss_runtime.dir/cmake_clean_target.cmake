file(REMOVE_RECURSE
  "libss_runtime.a"
)
