# Empty dependencies file for ss_runtime.
# This may be replaced when dependencies are built.
