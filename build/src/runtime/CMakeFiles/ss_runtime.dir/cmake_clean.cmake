file(REMOVE_RECURSE
  "CMakeFiles/ss_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/ss_runtime.dir/Interpreter.cpp.o.d"
  "CMakeFiles/ss_runtime.dir/ProfileBuilder.cpp.o"
  "CMakeFiles/ss_runtime.dir/ProfileBuilder.cpp.o.d"
  "CMakeFiles/ss_runtime.dir/ThreadedRuntime.cpp.o"
  "CMakeFiles/ss_runtime.dir/ThreadedRuntime.cpp.o.d"
  "libss_runtime.a"
  "libss_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
