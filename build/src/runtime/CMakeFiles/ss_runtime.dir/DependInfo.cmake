
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Interpreter.cpp" "src/runtime/CMakeFiles/ss_runtime.dir/Interpreter.cpp.o" "gcc" "src/runtime/CMakeFiles/ss_runtime.dir/Interpreter.cpp.o.d"
  "/root/repo/src/runtime/ProfileBuilder.cpp" "src/runtime/CMakeFiles/ss_runtime.dir/ProfileBuilder.cpp.o" "gcc" "src/runtime/CMakeFiles/ss_runtime.dir/ProfileBuilder.cpp.o.d"
  "/root/repo/src/runtime/ThreadedRuntime.cpp" "src/runtime/CMakeFiles/ss_runtime.dir/ThreadedRuntime.cpp.o" "gcc" "src/runtime/CMakeFiles/ss_runtime.dir/ThreadedRuntime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ss_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ss_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/ss_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ss_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
