# Empty compiler generated dependencies file for ss_runtime.
# This may be replaced when dependencies are built.
