
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Art.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Art.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Art.cpp.o.d"
  "/root/repo/src/workloads/Clomp.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Clomp.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Clomp.cpp.o.d"
  "/root/repo/src/workloads/Driver.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Driver.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Driver.cpp.o.d"
  "/root/repo/src/workloads/ExtraCaseStudies.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/ExtraCaseStudies.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/ExtraCaseStudies.cpp.o.d"
  "/root/repo/src/workloads/Health.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Health.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Health.cpp.o.d"
  "/root/repo/src/workloads/Libquantum.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Libquantum.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Libquantum.cpp.o.d"
  "/root/repo/src/workloads/Mser.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Mser.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Mser.cpp.o.d"
  "/root/repo/src/workloads/Nn.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Nn.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Nn.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Synthetic.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Synthetic.cpp.o.d"
  "/root/repo/src/workloads/Tsp.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Tsp.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Tsp.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/ss_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/ss_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ss_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ss_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ss_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/ss_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ss_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
