file(REMOVE_RECURSE
  "libss_workloads.a"
)
