file(REMOVE_RECURSE
  "CMakeFiles/ss_workloads.dir/Art.cpp.o"
  "CMakeFiles/ss_workloads.dir/Art.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Clomp.cpp.o"
  "CMakeFiles/ss_workloads.dir/Clomp.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Driver.cpp.o"
  "CMakeFiles/ss_workloads.dir/Driver.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/ExtraCaseStudies.cpp.o"
  "CMakeFiles/ss_workloads.dir/ExtraCaseStudies.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Health.cpp.o"
  "CMakeFiles/ss_workloads.dir/Health.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Libquantum.cpp.o"
  "CMakeFiles/ss_workloads.dir/Libquantum.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Mser.cpp.o"
  "CMakeFiles/ss_workloads.dir/Mser.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Nn.cpp.o"
  "CMakeFiles/ss_workloads.dir/Nn.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Registry.cpp.o"
  "CMakeFiles/ss_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Synthetic.cpp.o"
  "CMakeFiles/ss_workloads.dir/Synthetic.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Tsp.cpp.o"
  "CMakeFiles/ss_workloads.dir/Tsp.cpp.o.d"
  "CMakeFiles/ss_workloads.dir/Workload.cpp.o"
  "CMakeFiles/ss_workloads.dir/Workload.cpp.o.d"
  "libss_workloads.a"
  "libss_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
