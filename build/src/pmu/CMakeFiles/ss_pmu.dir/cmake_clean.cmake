file(REMOVE_RECURSE
  "CMakeFiles/ss_pmu.dir/AddressSampling.cpp.o"
  "CMakeFiles/ss_pmu.dir/AddressSampling.cpp.o.d"
  "CMakeFiles/ss_pmu.dir/PerfEventBackend.cpp.o"
  "CMakeFiles/ss_pmu.dir/PerfEventBackend.cpp.o.d"
  "libss_pmu.a"
  "libss_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
