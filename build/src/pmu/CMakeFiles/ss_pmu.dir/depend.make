# Empty dependencies file for ss_pmu.
# This may be replaced when dependencies are built.
