file(REMOVE_RECURSE
  "libss_pmu.a"
)
