file(REMOVE_RECURSE
  "CMakeFiles/ss_cache.dir/Cache.cpp.o"
  "CMakeFiles/ss_cache.dir/Cache.cpp.o.d"
  "CMakeFiles/ss_cache.dir/Hierarchy.cpp.o"
  "CMakeFiles/ss_cache.dir/Hierarchy.cpp.o.d"
  "CMakeFiles/ss_cache.dir/Tlb.cpp.o"
  "CMakeFiles/ss_cache.dir/Tlb.cpp.o.d"
  "libss_cache.a"
  "libss_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
