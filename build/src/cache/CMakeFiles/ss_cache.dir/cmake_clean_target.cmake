file(REMOVE_RECURSE
  "libss_cache.a"
)
