
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/Cache.cpp" "src/cache/CMakeFiles/ss_cache.dir/Cache.cpp.o" "gcc" "src/cache/CMakeFiles/ss_cache.dir/Cache.cpp.o.d"
  "/root/repo/src/cache/Hierarchy.cpp" "src/cache/CMakeFiles/ss_cache.dir/Hierarchy.cpp.o" "gcc" "src/cache/CMakeFiles/ss_cache.dir/Hierarchy.cpp.o.d"
  "/root/repo/src/cache/Tlb.cpp" "src/cache/CMakeFiles/ss_cache.dir/Tlb.cpp.o" "gcc" "src/cache/CMakeFiles/ss_cache.dir/Tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
