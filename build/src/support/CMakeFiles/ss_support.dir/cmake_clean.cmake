file(REMOVE_RECURSE
  "CMakeFiles/ss_support.dir/DotWriter.cpp.o"
  "CMakeFiles/ss_support.dir/DotWriter.cpp.o.d"
  "CMakeFiles/ss_support.dir/Error.cpp.o"
  "CMakeFiles/ss_support.dir/Error.cpp.o.d"
  "CMakeFiles/ss_support.dir/Format.cpp.o"
  "CMakeFiles/ss_support.dir/Format.cpp.o.d"
  "CMakeFiles/ss_support.dir/MathUtil.cpp.o"
  "CMakeFiles/ss_support.dir/MathUtil.cpp.o.d"
  "CMakeFiles/ss_support.dir/Stats.cpp.o"
  "CMakeFiles/ss_support.dir/Stats.cpp.o.d"
  "CMakeFiles/ss_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/ss_support.dir/TablePrinter.cpp.o.d"
  "CMakeFiles/ss_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/ss_support.dir/ThreadPool.cpp.o.d"
  "libss_support.a"
  "libss_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
