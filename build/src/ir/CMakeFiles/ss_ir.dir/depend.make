# Empty dependencies file for ss_ir.
# This may be replaced when dependencies are built.
