file(REMOVE_RECURSE
  "CMakeFiles/ss_ir.dir/Program.cpp.o"
  "CMakeFiles/ss_ir.dir/Program.cpp.o.d"
  "CMakeFiles/ss_ir.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/ss_ir.dir/ProgramBuilder.cpp.o.d"
  "CMakeFiles/ss_ir.dir/StructLayout.cpp.o"
  "CMakeFiles/ss_ir.dir/StructLayout.cpp.o.d"
  "CMakeFiles/ss_ir.dir/Verifier.cpp.o"
  "CMakeFiles/ss_ir.dir/Verifier.cpp.o.d"
  "libss_ir.a"
  "libss_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
