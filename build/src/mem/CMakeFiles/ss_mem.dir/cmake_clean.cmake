file(REMOVE_RECURSE
  "CMakeFiles/ss_mem.dir/DataObjectTable.cpp.o"
  "CMakeFiles/ss_mem.dir/DataObjectTable.cpp.o.d"
  "CMakeFiles/ss_mem.dir/SimMemory.cpp.o"
  "CMakeFiles/ss_mem.dir/SimMemory.cpp.o.d"
  "CMakeFiles/ss_mem.dir/TrackingAllocator.cpp.o"
  "CMakeFiles/ss_mem.dir/TrackingAllocator.cpp.o.d"
  "libss_mem.a"
  "libss_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
