file(REMOVE_RECURSE
  "libss_analysis.a"
)
