file(REMOVE_RECURSE
  "CMakeFiles/ss_analysis.dir/CodeMap.cpp.o"
  "CMakeFiles/ss_analysis.dir/CodeMap.cpp.o.d"
  "CMakeFiles/ss_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/ss_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/ss_analysis.dir/LoopNest.cpp.o"
  "CMakeFiles/ss_analysis.dir/LoopNest.cpp.o.d"
  "libss_analysis.a"
  "libss_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
