# Empty compiler generated dependencies file for ss_analysis.
# This may be replaced when dependencies are built.
