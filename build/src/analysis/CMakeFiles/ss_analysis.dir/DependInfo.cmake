
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CodeMap.cpp" "src/analysis/CMakeFiles/ss_analysis.dir/CodeMap.cpp.o" "gcc" "src/analysis/CMakeFiles/ss_analysis.dir/CodeMap.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/ss_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/ss_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LoopNest.cpp" "src/analysis/CMakeFiles/ss_analysis.dir/LoopNest.cpp.o" "gcc" "src/analysis/CMakeFiles/ss_analysis.dir/LoopNest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ss_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
