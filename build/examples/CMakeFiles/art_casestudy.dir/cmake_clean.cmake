file(REMOVE_RECURSE
  "CMakeFiles/art_casestudy.dir/art_casestudy.cpp.o"
  "CMakeFiles/art_casestudy.dir/art_casestudy.cpp.o.d"
  "art_casestudy"
  "art_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/art_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
