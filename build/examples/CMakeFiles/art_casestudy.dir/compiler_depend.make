# Empty compiler generated dependencies file for art_casestudy.
# This may be replaced when dependencies are built.
