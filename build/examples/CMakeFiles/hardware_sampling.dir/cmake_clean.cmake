file(REMOVE_RECURSE
  "CMakeFiles/hardware_sampling.dir/hardware_sampling.cpp.o"
  "CMakeFiles/hardware_sampling.dir/hardware_sampling.cpp.o.d"
  "hardware_sampling"
  "hardware_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
