
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hardware_sampling.cpp" "examples/CMakeFiles/hardware_sampling.dir/hardware_sampling.cpp.o" "gcc" "examples/CMakeFiles/hardware_sampling.dir/hardware_sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmu/CMakeFiles/ss_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ss_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
