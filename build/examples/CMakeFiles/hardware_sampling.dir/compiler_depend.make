# Empty compiler generated dependencies file for hardware_sampling.
# This may be replaced when dependencies are built.
