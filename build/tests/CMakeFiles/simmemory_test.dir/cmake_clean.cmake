file(REMOVE_RECURSE
  "CMakeFiles/simmemory_test.dir/simmemory_test.cpp.o"
  "CMakeFiles/simmemory_test.dir/simmemory_test.cpp.o.d"
  "simmemory_test"
  "simmemory_test.pdb"
  "simmemory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmemory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
