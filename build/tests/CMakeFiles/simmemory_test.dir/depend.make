# Empty dependencies file for simmemory_test.
# This may be replaced when dependencies are built.
