file(REMOVE_RECURSE
  "CMakeFiles/parallel_runtime_test.dir/parallel_runtime_test.cpp.o"
  "CMakeFiles/parallel_runtime_test.dir/parallel_runtime_test.cpp.o.d"
  "parallel_runtime_test"
  "parallel_runtime_test.pdb"
  "parallel_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
