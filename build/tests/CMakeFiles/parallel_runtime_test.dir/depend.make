# Empty dependencies file for parallel_runtime_test.
# This may be replaced when dependencies are built.
