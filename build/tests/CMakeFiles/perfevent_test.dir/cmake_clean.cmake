file(REMOVE_RECURSE
  "CMakeFiles/perfevent_test.dir/perfevent_test.cpp.o"
  "CMakeFiles/perfevent_test.dir/perfevent_test.cpp.o.d"
  "perfevent_test"
  "perfevent_test.pdb"
  "perfevent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfevent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
