# Empty dependencies file for perfevent_test.
# This may be replaced when dependencies are built.
