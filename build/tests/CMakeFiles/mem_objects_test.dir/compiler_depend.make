# Empty compiler generated dependencies file for mem_objects_test.
# This may be replaced when dependencies are built.
