file(REMOVE_RECURSE
  "CMakeFiles/mem_objects_test.dir/mem_objects_test.cpp.o"
  "CMakeFiles/mem_objects_test.dir/mem_objects_test.cpp.o.d"
  "mem_objects_test"
  "mem_objects_test.pdb"
  "mem_objects_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_objects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
