# Empty dependencies file for loopnest_test.
# This may be replaced when dependencies are built.
