file(REMOVE_RECURSE
  "CMakeFiles/loopnest_test.dir/loopnest_test.cpp.o"
  "CMakeFiles/loopnest_test.dir/loopnest_test.cpp.o.d"
  "loopnest_test"
  "loopnest_test.pdb"
  "loopnest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopnest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
