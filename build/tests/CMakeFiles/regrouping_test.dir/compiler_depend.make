# Empty compiler generated dependencies file for regrouping_test.
# This may be replaced when dependencies are built.
