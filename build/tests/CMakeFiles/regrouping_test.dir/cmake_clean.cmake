file(REMOVE_RECURSE
  "CMakeFiles/regrouping_test.dir/regrouping_test.cpp.o"
  "CMakeFiles/regrouping_test.dir/regrouping_test.cpp.o.d"
  "regrouping_test"
  "regrouping_test.pdb"
  "regrouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regrouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
