file(REMOVE_RECURSE
  "CMakeFiles/structlayout_test.dir/structlayout_test.cpp.o"
  "CMakeFiles/structlayout_test.dir/structlayout_test.cpp.o.d"
  "structlayout_test"
  "structlayout_test.pdb"
  "structlayout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structlayout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
