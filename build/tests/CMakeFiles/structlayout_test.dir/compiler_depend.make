# Empty compiler generated dependencies file for structlayout_test.
# This may be replaced when dependencies are built.
