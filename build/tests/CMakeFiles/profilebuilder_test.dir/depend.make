# Empty dependencies file for profilebuilder_test.
# This may be replaced when dependencies are built.
