file(REMOVE_RECURSE
  "CMakeFiles/profilebuilder_test.dir/profilebuilder_test.cpp.o"
  "CMakeFiles/profilebuilder_test.dir/profilebuilder_test.cpp.o.d"
  "profilebuilder_test"
  "profilebuilder_test.pdb"
  "profilebuilder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profilebuilder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
