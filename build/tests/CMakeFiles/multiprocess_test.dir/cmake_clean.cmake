file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_test.dir/multiprocess_test.cpp.o"
  "CMakeFiles/multiprocess_test.dir/multiprocess_test.cpp.o.d"
  "multiprocess_test"
  "multiprocess_test.pdb"
  "multiprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
