# Empty compiler generated dependencies file for benefitmodel_test.
# This may be replaced when dependencies are built.
