file(REMOVE_RECURSE
  "CMakeFiles/benefitmodel_test.dir/benefitmodel_test.cpp.o"
  "CMakeFiles/benefitmodel_test.dir/benefitmodel_test.cpp.o.d"
  "benefitmodel_test"
  "benefitmodel_test.pdb"
  "benefitmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benefitmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
