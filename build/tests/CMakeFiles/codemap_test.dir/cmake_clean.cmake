file(REMOVE_RECURSE
  "CMakeFiles/codemap_test.dir/codemap_test.cpp.o"
  "CMakeFiles/codemap_test.dir/codemap_test.cpp.o.d"
  "codemap_test"
  "codemap_test.pdb"
  "codemap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
