# Empty compiler generated dependencies file for codemap_test.
# This may be replaced when dependencies are built.
