file(REMOVE_RECURSE
  "CMakeFiles/structslim-structure.dir/structslim-structure.cpp.o"
  "CMakeFiles/structslim-structure.dir/structslim-structure.cpp.o.d"
  "structslim-structure"
  "structslim-structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structslim-structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
