# Empty compiler generated dependencies file for structslim-structure.
# This may be replaced when dependencies are built.
