# Empty compiler generated dependencies file for structslim-report.
# This may be replaced when dependencies are built.
