file(REMOVE_RECURSE
  "CMakeFiles/structslim-report.dir/structslim-report.cpp.o"
  "CMakeFiles/structslim-report.dir/structslim-report.cpp.o.d"
  "structslim-report"
  "structslim-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structslim-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
